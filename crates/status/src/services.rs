//! The service-process panel: per-site daemon liveness.
//!
//! The status grid answers "which tests fail where"; this panel answers
//! the operator's next question — "is the site down, or just its daemon?"
//! A powered site whose OAR server process crashed shows up here as
//! `CRASHED` with its chaos ledger (crashes / restarts / dropped calls),
//! while the power-outage case never reaches this table at all (the grid's
//! `oarstate` row already carries it).

use ttt_core::snapshot::CampaignSnapshot;
use ttt_sim::rpc::Liveness;
use ttt_testbed::{ProcessRegistry, Testbed};

/// One service process, flattened for presentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRow {
    /// Service name (e.g. `oar-server`).
    pub service: String,
    /// Site name the process serves.
    pub site: String,
    /// Host node index, if pinned.
    pub host: Option<u32>,
    /// Rendered liveness: `up`, `CRASHED` or `restarting@<min>m`.
    pub state: String,
    /// Whether the process answers right now.
    pub up: bool,
    /// Lifetime halts (crash or restart faults).
    pub crashes: u64,
    /// Lifetime recoveries.
    pub restarts: u64,
    /// Calls the RPC envelope refused or dropped.
    pub dropped_calls: u64,
}

/// The panel: every registered process, site-major.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServicesPanel {
    /// All rows, in the registry's stable order.
    pub rows: Vec<ServiceRow>,
}

impl ServicesPanel {
    /// Build the panel from a process registry, naming sites through the
    /// testbed.
    pub fn from_testbed(tb: &Testbed) -> ServicesPanel {
        Self::from_registry(tb.processes(), |idx| {
            tb.sites()
                .get(idx)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| format!("site-{idx}"))
        })
    }

    /// Build the panel from a published read-plane epoch. The snapshot's
    /// `ServiceLiveness` rows mirror `ServiceRow` field-for-field (same
    /// rendering, captured by `rows_from_testbed`), so this is a plain
    /// borrow-and-map — no registry walk, no testbed access.
    pub fn from_snapshot(snap: &CampaignSnapshot) -> ServicesPanel {
        ServicesPanel {
            rows: snap
                .services
                .iter()
                .map(|r| ServiceRow {
                    service: r.service.clone(),
                    site: r.site.clone(),
                    host: r.host,
                    state: r.state.clone(),
                    up: r.up,
                    crashes: r.crashes,
                    restarts: r.restarts,
                    dropped_calls: r.dropped_calls,
                })
                .collect(),
        }
    }

    /// Build the panel from a registry alone, with a site-naming function.
    pub fn from_registry(
        reg: &ProcessRegistry,
        site_name: impl Fn(usize) -> String,
    ) -> ServicesPanel {
        let rows = reg
            .iter()
            .map(|e| {
                let state = match e.state {
                    Liveness::Up => "up".to_string(),
                    Liveness::Crashed => "CRASHED".to_string(),
                    Liveness::RestartingAt(t) => {
                        format!("restarting@{}m", t.as_secs() / 60)
                    }
                };
                ServiceRow {
                    service: e.id.kind.to_string(),
                    site: site_name(e.id.site.index()),
                    host: e.host.map(|n| n.0),
                    state,
                    up: e.state.is_up(),
                    crashes: e.crashes,
                    restarts: e.restarts,
                    dropped_calls: e.dropped_calls,
                }
            })
            .collect();
        ServicesPanel { rows }
    }

    /// Rows whose process is currently down — the pager view.
    pub fn down(&self) -> Vec<&ServiceRow> {
        self.rows.iter().filter(|r| !r.up).collect()
    }

    /// Rows that saw chaos at some point (non-zero ledger), for digests
    /// and post-campaign reports.
    pub fn touched(&self) -> Vec<&ServiceRow> {
        self.rows
            .iter()
            .filter(|r| r.crashes + r.restarts + r.dropped_calls > 0)
            .collect()
    }

    /// Render the ASCII table. Healthy, never-touched processes are
    /// folded into a single summary line to keep the page readable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<12} {:>6} {:<16} {:>7} {:>8} {:>7}\n",
            "service", "site", "host", "state", "crashes", "restarts", "dropped"
        ));
        let mut quiet = 0usize;
        for r in &self.rows {
            if r.up && r.crashes + r.restarts + r.dropped_calls == 0 {
                quiet += 1;
                continue;
            }
            out.push_str(&format!(
                "{:<18} {:<12} {:>6} {:<16} {:>7} {:>8} {:>7}\n",
                r.service,
                r.site,
                r.host.map(|h| h.to_string()).unwrap_or_else(|| "-".into()),
                r.state,
                r.crashes,
                r.restarts,
                r.dropped_calls
            ));
        }
        out.push_str(&format!("({quiet} healthy processes not shown)\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttt_sim::SimTime;
    use ttt_testbed::{NodeId, ServiceKind, SiteId};

    fn reg() -> ProcessRegistry {
        ProcessRegistry::new(2, |s| Some(NodeId(s as u32 * 8)))
    }

    #[test]
    fn panel_flags_down_processes_only() {
        let mut r = reg();
        r.crash(SiteId(0), ServiceKind::OarServer);
        r.schedule_restart(SiteId(1), ServiceKind::KwapiServer, SimTime::from_mins(30));
        let panel = ServicesPanel::from_registry(&r, |i| format!("s{i}"));
        let down = panel.down();
        assert_eq!(down.len(), 2);
        assert_eq!(down[0].service, "oar-server");
        assert_eq!(down[0].state, "CRASHED");
        assert_eq!(down[1].state, "restarting@30m");
        assert_eq!(panel.touched().len(), 2);
    }

    #[test]
    fn render_folds_quiet_rows() {
        let mut r = reg();
        r.crash(SiteId(0), ServiceKind::OarServer);
        let panel = ServicesPanel::from_registry(&r, |i| format!("s{i}"));
        let s = panel.render();
        assert!(s.contains("CRASHED"), "{s}");
        assert!(!s.contains("kadeploy-server"), "quiet rows must fold: {s}");
        assert!(s.contains("healthy processes not shown"));
    }

    #[test]
    fn recovery_clears_the_pager_but_keeps_the_ledger() {
        let mut r = reg();
        r.crash(SiteId(0), ServiceKind::OarServer);
        r.mark_up(SiteId(0), ServiceKind::OarServer);
        let panel = ServicesPanel::from_registry(&r, |i| format!("s{i}"));
        assert!(panel.down().is_empty());
        assert_eq!(panel.touched().len(), 1);
        assert_eq!(panel.touched()[0].crashes, 1);
        assert_eq!(panel.touched()[0].restarts, 1);
    }
}

//! Historical views: success-rate trends per job and compact sparklines.
//!
//! Slide 18's third requirement is the "historical perspective" — the
//! status page must show whether a test's health is improving or decaying,
//! not just its latest colour.

use crate::grid::StatusGrid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ttt_ci::JobView;
use ttt_core::snapshot::CampaignSnapshot;
use ttt_sim::{PeriodSeries, SimDuration};

/// Per-job success-rate history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistoryReport {
    /// Period length used for bucketing.
    pub period: SimDuration,
    /// Per-job series of `(period index, success fraction)`.
    pub per_job: BTreeMap<String, Vec<(usize, f64)>>,
}

impl HistoryReport {
    /// Build per-job histories from CI views.
    pub fn from_views(views: &[JobView], period: SimDuration) -> Self {
        let mut per_job = BTreeMap::new();
        for view in views {
            let mut series = PeriodSeries::new(period);
            for b in &view.builds {
                if let (Some(result), Some(t)) = (b.result, b.finished_at) {
                    series.push(t, if result.is_success() { 1.0 } else { 0.0 });
                }
            }
            let means = series.means();
            if !means.is_empty() {
                per_job.insert(view.name.clone(), means);
            }
        }
        HistoryReport { period, per_job }
    }

    /// Build per-job histories from a published read-plane epoch,
    /// borrowing its views in place. Bit-identical with
    /// `ttt_core::snapshot::QueryEngine` job-trend answers against the
    /// same epoch (both bucket through [`ttt_sim::PeriodSeries`]).
    pub fn from_snapshot(snap: &CampaignSnapshot, period: SimDuration) -> Self {
        Self::from_views(&snap.jobs, period)
    }

    /// Trend of one job: latest-period success minus first-period success
    /// (positive = improving).
    pub fn trend(&self, job: &str) -> Option<f64> {
        let series = self.per_job.get(job)?;
        let first = series.first()?.1;
        let last = series.last()?.1;
        Some(last - first)
    }

    /// Unicode sparkline of one job's history (`▁▂▃▄▅▆▇█`).
    pub fn sparkline(&self, job: &str) -> Option<String> {
        let series = self.per_job.get(job)?;
        Some(sparkline(series.iter().map(|(_, v)| *v)))
    }

    /// Render every job as `name  sparkline  first%→last%`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .per_job
            .keys()
            .map(|j| j.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for (job, series) in &self.per_job {
            let spark = sparkline(series.iter().map(|(_, v)| *v));
            let first = series.first().map(|(_, v)| v * 100.0).unwrap_or(0.0);
            let last = series.last().map(|(_, v)| v * 100.0).unwrap_or(0.0);
            out.push_str(&format!(
                "{job:<width$}  {spark}  {first:5.1}% → {last:5.1}%\n"
            ));
        }
        out
    }
}

/// Render values in `[0, 1]` as a Unicode sparkline.
pub fn sparkline(values: impl Iterator<Item = f64>) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .map(|v| {
            let idx = (v.clamp(0.0, 1.0) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx]
        })
        .collect()
}

/// Identify the worst targets of a grid (lowest success ratio with at
/// least `min_builds` finished builds) — the operators' to-do list.
pub fn worst_targets(grid: &StatusGrid, n: usize, min_builds: u64) -> Vec<(String, f64)> {
    let mut totals: BTreeMap<&String, (u64, u64)> = BTreeMap::new();
    for ((_, target), cell) in &grid.cells {
        let e = totals.entry(target).or_default();
        e.0 += cell.total;
        e.1 += cell.successes;
    }
    let mut v: Vec<(String, f64)> = totals
        .into_iter()
        .filter(|(_, (total, _))| *total >= min_builds)
        .map(|(t, (total, ok))| (t.clone(), ok as f64 / total as f64))
        .collect();
    v.sort_by(|a, b| a.1.total_cmp(&b.1));
    v.truncate(n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttt_ci::{BuildResult, BuildView, Cause};
    use ttt_sim::SimTime;

    fn bv(cell: &str, result: BuildResult, day: u64) -> BuildView {
        BuildView {
            number: 1,
            cell: Some(cell.into()),
            cause: Cause::Cron,
            result: Some(result),
            queued_at: SimTime::from_days(day),
            finished_at: Some(SimTime::from_days(day)),
            log: vec![],
        }
    }

    fn views() -> Vec<JobView> {
        vec![JobView {
            name: "disk".into(),
            builds: vec![
                // Week 0: 1/2 success; week 1: 2/2.
                bv("cluster=a", BuildResult::Failure, 1),
                bv("cluster=a", BuildResult::Success, 2),
                bv("cluster=a", BuildResult::Success, 8),
                bv("cluster=b", BuildResult::Success, 9),
            ],
        }]
    }

    #[test]
    fn history_buckets_and_trend() {
        let h = HistoryReport::from_views(&views(), SimDuration::from_days(7));
        let series = &h.per_job["disk"];
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 0.5).abs() < 1e-12);
        assert!((series[1].1 - 1.0).abs() < 1e-12);
        assert!((h.trend("disk").unwrap() - 0.5).abs() < 1e-12);
        assert!(h.trend("nope").is_none());
    }

    #[test]
    fn sparkline_shape() {
        assert_eq!(sparkline([0.0, 0.5, 1.0].into_iter()), "▁▅█");
        let h = HistoryReport::from_views(&views(), SimDuration::from_days(7));
        assert_eq!(h.sparkline("disk").unwrap().chars().count(), 2);
    }

    #[test]
    fn render_contains_all_jobs() {
        let h = HistoryReport::from_views(&views(), SimDuration::from_days(7));
        let s = h.render();
        assert!(s.contains("disk"));
        assert!(s.contains('→'));
    }

    #[test]
    fn worst_targets_orders_ascending() {
        let grid = StatusGrid::from_views(&views());
        let worst = worst_targets(&grid, 5, 1);
        assert_eq!(worst[0].0, "a"); // 2/3 success
        assert!((worst[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(worst[1].0, "b"); // 1/1
        // min_builds filters thin targets.
        let filtered = worst_targets(&grid, 5, 2);
        assert_eq!(filtered.len(), 1);
    }
}

//! The test × target status grid.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ttt_ci::{BuildResult, JobView};
use ttt_core::snapshot::CampaignSnapshot;
use ttt_sim::{PeriodSeries, SimDuration};

/// Aggregated status of one (test, target) cell.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CellStatus {
    /// Result of the most recent finished build.
    pub latest: Option<BuildResult>,
    /// Finished builds seen.
    pub total: u64,
    /// Successful builds seen.
    pub successes: u64,
}

impl CellStatus {
    /// Success ratio over the recorded history.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.successes as f64 / self.total as f64
        }
    }

    /// One-character weather symbol for the ASCII grid.
    pub fn symbol(&self) -> char {
        match self.latest {
            None => '·',
            Some(BuildResult::Success) => '✓',
            Some(BuildResult::Unstable) => '~',
            Some(BuildResult::Failure) => '✗',
            Some(BuildResult::Aborted) => '!',
        }
    }
}

/// Extract the grid's target key from a matrix cell string — delegates to
/// [`ttt_ci::cell_target`], the one shared bucketing rule for both the
/// render plane and the snapshot query engine.
fn target_of(cell: Option<&str>) -> String {
    ttt_ci::cell_target(cell)
}

/// The status grid: tests on rows, targets (clusters/sites) on columns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusGrid {
    /// Row labels (job names), sorted.
    pub jobs: Vec<String>,
    /// Column labels (targets), sorted.
    pub targets: Vec<String>,
    /// Cell statuses keyed by `(job, target)`.
    pub cells: BTreeMap<(String, String), CellStatus>,
}

impl StatusGrid {
    /// Build the grid from CI views (finished builds only).
    pub fn from_views(views: &[JobView]) -> StatusGrid {
        let mut cells: BTreeMap<(String, String), CellStatus> = BTreeMap::new();
        for view in views {
            for b in &view.builds {
                let Some(result) = b.result else { continue };
                let target = target_of(b.cell.as_deref());
                let cell = cells
                    .entry((view.name.clone(), target))
                    .or_default();
                cell.total += 1;
                if result.is_success() {
                    cell.successes += 1;
                }
                cell.latest = Some(result);
            }
        }
        let mut jobs: Vec<String> = cells.keys().map(|(j, _)| j.clone()).collect();
        jobs.sort();
        jobs.dedup();
        let mut targets: Vec<String> = cells.keys().map(|(_, t)| t.clone()).collect();
        targets.sort();
        targets.dedup();
        StatusGrid {
            jobs,
            targets,
            cells,
        }
    }

    /// Build the grid from a published read-plane epoch. Borrows the
    /// snapshot's views in place — no per-render clone of the job
    /// histories — and agrees bit-for-bit with
    /// `ttt_core::snapshot::QueryEngine` status-cell answers against the
    /// same epoch (both share [`ttt_ci::cell_target`]).
    pub fn from_snapshot(snap: &CampaignSnapshot) -> StatusGrid {
        Self::from_views(&snap.jobs)
    }

    /// Status of one cell.
    pub fn cell(&self, job: &str, target: &str) -> Option<&CellStatus> {
        self.cells.get(&(job.to_string(), target.to_string()))
    }

    /// Success ratio of one test across every target (slide 18's "per test
    /// status, for all sites/clusters").
    pub fn job_ratio(&self, job: &str) -> f64 {
        self.ratio_where(|(j, _)| j == job)
    }

    /// Success ratio of one target across every test ("per site or per
    /// cluster status, for all tests").
    pub fn target_ratio(&self, target: &str) -> f64 {
        self.ratio_where(|(_, t)| t == target)
    }

    /// Overall success ratio.
    pub fn overall_ratio(&self) -> f64 {
        self.ratio_where(|_| true)
    }

    fn ratio_where<F: Fn(&(String, String)) -> bool>(&self, pred: F) -> f64 {
        let (mut total, mut ok) = (0u64, 0u64);
        for (key, cell) in &self.cells {
            if pred(key) {
                total += cell.total;
                ok += cell.successes;
            }
        }
        if total == 0 {
            0.0
        } else {
            ok as f64 / total as f64
        }
    }

    /// Render the slide-19-style weather table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .jobs
            .iter()
            .map(|j| j.len())
            .max()
            .unwrap_or(4)
            .max(4);
        // Header.
        out.push_str(&format!("{:width$} ", "", width = width));
        for t in &self.targets {
            out.push_str(&format!("{:>8.8}", t));
        }
        out.push('\n');
        for job in &self.jobs {
            out.push_str(&format!("{job:width$} "));
            for target in &self.targets {
                let sym = self
                    .cell(job, target)
                    .map(|c| c.symbol())
                    .unwrap_or(' ');
                out.push_str(&format!("{sym:>8}"));
            }
            out.push_str(&format!("  {:5.1}%\n", self.job_ratio(job) * 100.0));
        }
        out.push_str(&format!(
            "{:width$} overall {:5.1}%\n",
            "",
            self.overall_ratio() * 100.0,
            width = width
        ));
        out
    }
}

/// Success-rate history: fraction of successful builds per period, over
/// every finished build in the views (experiment E9's monthly series).
pub fn success_series(views: &[JobView], period: SimDuration) -> PeriodSeries {
    let mut series = PeriodSeries::new(period);
    for view in views {
        for b in &view.builds {
            if let (Some(result), Some(t)) = (b.result, b.finished_at) {
                series.push(t, if result.is_success() { 1.0 } else { 0.0 });
            }
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use ttt_sim::SimTime;
    use super::*;
    use ttt_ci::{BuildView, Cause};

    fn bv(cell: Option<&str>, result: BuildResult, day: u64) -> BuildView {
        BuildView {
            number: 1,
            cell: cell.map(String::from),
            cause: Cause::Cron,
            result: Some(result),
            queued_at: SimTime::from_days(day),
            finished_at: Some(SimTime::from_days(day)),
            log: vec![],
        }
    }

    fn views() -> Vec<JobView> {
        vec![
            JobView {
                name: "disk".into(),
                builds: vec![
                    bv(Some("cluster=grisou"), BuildResult::Success, 1),
                    bv(Some("cluster=grisou"), BuildResult::Failure, 2),
                    bv(Some("cluster=nova"), BuildResult::Success, 2),
                ],
            },
            JobView {
                name: "kavlan".into(),
                builds: vec![
                    bv(Some("site=nancy"), BuildResult::Unstable, 1),
                    bv(None, BuildResult::Success, 40),
                ],
            },
        ]
    }

    #[test]
    fn grid_shape_and_cells() {
        let g = StatusGrid::from_views(&views());
        assert_eq!(g.jobs, vec!["disk".to_string(), "kavlan".to_string()]);
        assert!(g.targets.contains(&"grisou".to_string()));
        assert!(g.targets.contains(&"nancy".to_string()));
        assert!(g.targets.contains(&"global".to_string()));
        let cell = g.cell("disk", "grisou").unwrap();
        assert_eq!(cell.total, 2);
        assert_eq!(cell.successes, 1);
        assert_eq!(cell.latest, Some(BuildResult::Failure));
        assert_eq!(cell.symbol(), '✗');
    }

    #[test]
    fn ratios_per_job_target_and_overall() {
        let g = StatusGrid::from_views(&views());
        assert!((g.job_ratio("disk") - 2.0 / 3.0).abs() < 1e-12);
        assert!((g.target_ratio("grisou") - 0.5).abs() < 1e-12);
        assert!((g.overall_ratio() - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(g.job_ratio("nope"), 0.0);
    }

    #[test]
    fn unstable_counts_as_not_success() {
        let g = StatusGrid::from_views(&views());
        let cell = g.cell("kavlan", "nancy").unwrap();
        assert_eq!(cell.successes, 0);
        assert_eq!(cell.symbol(), '~');
    }

    #[test]
    fn render_contains_rows_and_ratio() {
        let g = StatusGrid::from_views(&views());
        let s = g.render();
        assert!(s.contains("disk"), "{s}");
        assert!(s.contains("kavlan"));
        assert!(s.contains("overall"));
        assert!(s.contains('✓'));
    }

    #[test]
    fn success_series_buckets_by_period() {
        let series = success_series(&views(), SimDuration::from_days(30));
        // Period 0: 4 builds (days 1-2), 2 successes → 0.5.
        let p = series.periods();
        assert_eq!(p[0].count(), 4);
        assert!((p[0].mean() - 0.5).abs() < 1e-12);
        // Period 1: the day-40 success.
        assert_eq!(p[1].count(), 1);
        assert!((p[1].mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn running_builds_are_ignored() {
        let mut v = views();
        v[0].builds.push(BuildView {
            number: 9,
            cell: Some("cluster=grisou".into()),
            cause: Cause::Manual,
            result: None,
            queued_at: SimTime::from_days(3),
            finished_at: None,
            log: vec![],
        });
        let g = StatusGrid::from_views(&v);
        assert_eq!(g.cell("disk", "grisou").unwrap().total, 2);
    }
}

//! # ttt-kavlan — network reconfiguration and isolation
//!
//! Reproduces KaVLAN (slide 8): users move their nodes into isolated VLANs
//! to "protect the testbed from experiments" and "avoid network pollution",
//! with four VLAN types straight from the paper's figure:
//!
//! * **default** — routed between sites, where every node starts;
//! * **local** — isolated level-2 island, reachable only through an SSH
//!   gateway;
//! * **routed** — separate level-2 network, reachable through routing;
//! * **global** — one level-2 network spanning all sites.
//!
//! Reconfiguration happens per switch port. A `VlanPortStuck` fault makes a
//! port silently keep its old VLAN — the service reports success but
//! isolation is broken, which is exactly what the `kavlan` test family
//! detects by probing reachability in both directions.

#![forbid(unsafe_code)]

pub mod manager;

pub use manager::{KavlanManager, Vlan, VlanId, VlanKind, DEFAULT_VLAN};

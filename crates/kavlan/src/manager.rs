//! VLAN state and reachability model.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use ttt_sim::SimDuration;
use ttt_testbed::{NodeId, SiteId, Testbed};

/// VLAN identifier. VLAN 0 is the default VLAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VlanId(pub u16);

/// The default VLAN every node starts in.
pub const DEFAULT_VLAN: VlanId = VlanId(0);

/// The four VLAN types of the paper's figure (slide 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VlanKind {
    /// Routed between sites; the normal testbed network.
    Default,
    /// Isolated level-2 island at one site, reachable only via SSH gateway.
    Local,
    /// Separate level-2 network, reachable through routing.
    Routed,
    /// Level-2 network spanning every site.
    Global,
}

/// One VLAN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vlan {
    /// Identifier.
    pub id: VlanId,
    /// Type.
    pub kind: VlanKind,
    /// Owning site for local/routed VLANs (None for default/global).
    pub site: Option<SiteId>,
}

/// The KaVLAN service: VLAN inventory plus node→VLAN assignment.
#[derive(Debug, Clone)]
pub struct KavlanManager {
    vlans: Vec<Vlan>,
    /// Which VLAN each node's switch port is actually in. Nodes not present
    /// are in the default VLAN.
    assignment: BTreeMap<NodeId, VlanId>,
    /// Per-port reconfiguration latency.
    port_reconf: SimDuration,
    next_id: u16,
}

impl Default for KavlanManager {
    fn default() -> Self {
        Self::new()
    }
}

impl KavlanManager {
    /// A manager with only the default VLAN.
    pub fn new() -> Self {
        KavlanManager {
            vlans: vec![Vlan {
                id: DEFAULT_VLAN,
                kind: VlanKind::Default,
                site: None,
            }],
            assignment: BTreeMap::new(),
            port_reconf: SimDuration::from_millis(1500),
            next_id: 1,
        }
    }

    /// All known VLANs.
    pub fn vlans(&self) -> &[Vlan] {
        &self.vlans
    }

    /// Create a VLAN of the given kind. Local/routed VLANs need a site.
    ///
    /// # Panics
    /// Panics if a local/routed VLAN is created without a site.
    pub fn create_vlan(&mut self, kind: VlanKind, site: Option<SiteId>) -> VlanId {
        if matches!(kind, VlanKind::Local | VlanKind::Routed) {
            assert!(site.is_some(), "local/routed VLANs belong to a site");
        }
        let id = VlanId(self.next_id);
        self.next_id += 1;
        self.vlans.push(Vlan { id, kind, site });
        id
    }

    /// Look up a VLAN.
    pub fn vlan(&self, id: VlanId) -> Option<&Vlan> {
        self.vlans.iter().find(|v| v.id == id)
    }

    /// The VLAN a node's port is actually in.
    pub fn vlan_of(&self, node: NodeId) -> VlanId {
        *self.assignment.get(&node).unwrap_or(&DEFAULT_VLAN)
    }

    /// Reconfigure `node`'s switch port into `vlan`.
    ///
    /// Returns the reconfiguration latency. **Silent-failure semantics**:
    /// if the node's port is stuck (the `VlanPortStuck` fault), the call
    /// still returns success — exactly like a switch that ACKs the SNMP
    /// write but does not apply it. Only a reachability probe reveals it.
    pub fn set_vlan(&mut self, tb: &Testbed, node: NodeId, vlan: VlanId) -> SimDuration {
        if !tb.node(node).condition.vlan_port_stuck {
            if vlan == DEFAULT_VLAN {
                self.assignment.remove(&node);
            } else {
                self.assignment.insert(node, vlan);
            }
        }
        self.port_reconf
    }

    /// Move a whole set of nodes; returns the total reconfiguration time
    /// (ports are reconfigured serially by the service).
    pub fn set_vlan_all(&mut self, tb: &Testbed, nodes: &[NodeId], vlan: VlanId) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &n in nodes {
            total += self.set_vlan(tb, n, vlan);
        }
        total
    }

    /// Whether traffic from `a` can reach `b` directly (no SSH gateway).
    ///
    /// Rules, derived from the paper's figure:
    /// * same VLAN → reachable (level 2);
    /// * default ↔ routed → reachable (level 3 routing);
    /// * local VLANs → unreachable from anywhere else;
    /// * global ↔ default/routed → unreachable (separate level-2 domain,
    ///   no router between them);
    pub fn can_reach(&self, a: NodeId, b: NodeId) -> bool {
        let va = self.vlan_of(a);
        let vb = self.vlan_of(b);
        if va == vb {
            return true;
        }
        let ka = self.vlan(va).map(|v| v.kind).unwrap_or(VlanKind::Default);
        let kb = self.vlan(vb).map(|v| v.kind).unwrap_or(VlanKind::Default);
        matches!(
            (ka, kb),
            (VlanKind::Default, VlanKind::Routed)
                | (VlanKind::Routed, VlanKind::Default)
                | (VlanKind::Routed, VlanKind::Routed)
        )
    }

    /// Whether an SSH gateway can reach `node` (gateways bridge the default
    /// network and local VLANs).
    pub fn gateway_can_reach(&self, node: NodeId) -> bool {
        let v = self.vlan_of(node);
        match self.vlan(v).map(|v| v.kind) {
            Some(VlanKind::Local) | Some(VlanKind::Default) => true,
            Some(VlanKind::Routed) => true,
            Some(VlanKind::Global) => false,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttt_sim::SimTime;
    use ttt_testbed::{FaultKind, FaultTarget, TestbedBuilder};

    fn setup() -> (Testbed, KavlanManager, Vec<NodeId>) {
        let tb = TestbedBuilder::small().build();
        let nodes = tb.cluster_by_name("alpha").unwrap().nodes.clone();
        (tb, KavlanManager::new(), nodes)
    }

    #[test]
    fn nodes_start_in_default_vlan() {
        let (_tb, mgr, nodes) = setup();
        assert_eq!(mgr.vlan_of(nodes[0]), DEFAULT_VLAN);
        assert!(mgr.can_reach(nodes[0], nodes[1]));
    }

    #[test]
    fn local_vlan_isolates_both_directions() {
        let (tb, mut mgr, nodes) = setup();
        let site = tb.node(nodes[0]).site;
        let local = mgr.create_vlan(VlanKind::Local, Some(site));
        mgr.set_vlan(&tb, nodes[0], local);
        mgr.set_vlan(&tb, nodes[1], local);
        // Inside the island: reachable.
        assert!(mgr.can_reach(nodes[0], nodes[1]));
        // Island ↔ default: isolated both ways.
        assert!(!mgr.can_reach(nodes[0], nodes[2]));
        assert!(!mgr.can_reach(nodes[2], nodes[0]));
        // SSH gateway still reaches in.
        assert!(mgr.gateway_can_reach(nodes[0]));
    }

    #[test]
    fn routed_vlan_is_reachable_via_routing() {
        let (tb, mut mgr, nodes) = setup();
        let site = tb.node(nodes[0]).site;
        let routed = mgr.create_vlan(VlanKind::Routed, Some(site));
        mgr.set_vlan(&tb, nodes[0], routed);
        assert!(mgr.can_reach(nodes[0], nodes[1]));
        assert!(mgr.can_reach(nodes[1], nodes[0]));
    }

    #[test]
    fn global_vlan_spans_sites_but_not_default() {
        let (tb, mut mgr, _) = setup();
        let global = mgr.create_vlan(VlanKind::Global, None);
        // One node from each site.
        let east = tb.cluster_by_name("alpha").unwrap().nodes[0];
        let west = tb.cluster_by_name("gamma").unwrap().nodes[0];
        mgr.set_vlan(&tb, east, global);
        mgr.set_vlan(&tb, west, global);
        assert!(mgr.can_reach(east, west), "global VLAN is one L2 domain");
        let other = tb.cluster_by_name("beta").unwrap().nodes[0];
        assert!(!mgr.can_reach(east, other), "global is isolated from default");
        assert!(!mgr.gateway_can_reach(east));
    }

    #[test]
    fn returning_to_default_restores_reachability() {
        let (tb, mut mgr, nodes) = setup();
        let site = tb.node(nodes[0]).site;
        let local = mgr.create_vlan(VlanKind::Local, Some(site));
        mgr.set_vlan(&tb, nodes[0], local);
        assert!(!mgr.can_reach(nodes[0], nodes[1]));
        mgr.set_vlan(&tb, nodes[0], DEFAULT_VLAN);
        assert!(mgr.can_reach(nodes[0], nodes[1]));
    }

    #[test]
    fn stuck_port_fails_silently() {
        let (mut tb, mut mgr, nodes) = setup();
        tb.apply_fault(
            FaultKind::VlanPortStuck,
            FaultTarget::Node(nodes[0]),
            SimTime::ZERO,
        )
        .unwrap();
        let site = tb.node(nodes[0]).site;
        let local = mgr.create_vlan(VlanKind::Local, Some(site));
        // The call "succeeds" (latency returned, no error)...
        let latency = mgr.set_vlan(&tb, nodes[0], local);
        assert!(!latency.is_zero());
        // ...but the port never moved: the node is still reachable from
        // the default VLAN. This is the bug signature the test family sees.
        assert_eq!(mgr.vlan_of(nodes[0]), DEFAULT_VLAN);
        assert!(mgr.can_reach(nodes[0], nodes[1]));
    }

    #[test]
    fn reconfiguration_latency_accumulates() {
        let (tb, mut mgr, nodes) = setup();
        let site = tb.node(nodes[0]).site;
        let local = mgr.create_vlan(VlanKind::Local, Some(site));
        let total = mgr.set_vlan_all(&tb, &nodes, local);
        assert_eq!(total, SimDuration::from_millis(1500) * nodes.len() as u64);
        // "Almost no overhead": a full 4-node cluster moves in seconds.
        assert!(total < SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "belong to a site")]
    fn local_vlan_requires_site() {
        let mut mgr = KavlanManager::new();
        mgr.create_vlan(VlanKind::Local, None);
    }
}

//! Simulated service processes: every per-site service runs as a process
//! pinned to a host node, and that process can be killed.
//!
//! This is the testbed half of the FoundationDB simulation model (site →
//! host node → process → service interface): [`ProcessRegistry`] maps a
//! [`ServiceId`] (`kind` × `site`) to its host node plus a
//! [`Liveness`] state, and keeps the per-process chaos ledger (crash,
//! restart and dropped-call counters) that the campaign digest exposes as
//! engine-equivalence observables. The domain-agnostic primitives
//! (`Liveness`, `LinkQuality`, `Buggify`) live in `ttt_sim::rpc`.

use crate::ids::{NodeId, SiteId};
use crate::services::ServiceKind;
use ttt_sim::rpc::Liveness;
use ttt_sim::SimTime;

/// Identity of one service process: which service, on which site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId {
    /// What the process serves.
    pub kind: ServiceKind,
    /// The site whose node hosts it.
    pub site: SiteId,
}

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.site, self.kind)
    }
}

/// One registered service process.
#[derive(Debug, Clone)]
pub struct ProcessEntry {
    /// Identity (kind × site).
    pub id: ServiceId,
    /// The node hosting the process (the site's first node; identity and
    /// status-page metadata — host death is a separate fault axis).
    pub host: Option<NodeId>,
    /// Current liveness.
    pub state: Liveness,
    /// Times the process halted (crash or restart fault).
    pub crashes: u64,
    /// Times it came back up (bounded restart elapsing, or repair).
    pub restarts: u64,
    /// Calls the RPC envelope refused or dropped on the way to it.
    pub dropped_calls: u64,
}

/// The registry of every simulated service process, indexed
/// `[site][ServiceKind::ALL position]` like the service arena itself.
#[derive(Debug, Clone, Default)]
pub struct ProcessRegistry {
    entries: Vec<Vec<ProcessEntry>>,
}

fn kind_index(kind: ServiceKind) -> usize {
    ServiceKind::ALL.iter().position(|&k| k == kind).unwrap()
}

impl ProcessRegistry {
    /// Build the registry for `n_sites` sites, pinning each process to the
    /// host node picked by the caller (`host_of(site)`).
    pub fn new(n_sites: usize, host_of: impl Fn(usize) -> Option<NodeId>) -> Self {
        let entries = (0..n_sites)
            .map(|s| {
                ServiceKind::ALL
                    .iter()
                    .map(|&kind| ProcessEntry {
                        id: ServiceId {
                            kind,
                            site: SiteId(s as u16),
                        },
                        host: host_of(s),
                        state: Liveness::Up,
                        crashes: 0,
                        restarts: 0,
                        dropped_calls: 0,
                    })
                    .collect()
            })
            .collect();
        ProcessRegistry { entries }
    }

    /// One process entry.
    pub fn entry(&self, site: SiteId, kind: ServiceKind) -> &ProcessEntry {
        &self.entries[site.index()][kind_index(kind)]
    }

    fn entry_mut(&mut self, site: SiteId, kind: ServiceKind) -> &mut ProcessEntry {
        &mut self.entries[site.index()][kind_index(kind)]
    }

    /// Whether the process is listening.
    pub fn is_up(&self, site: SiteId, kind: ServiceKind) -> bool {
        self.entry(site, kind).state.is_up()
    }

    /// Halt the process with no scheduled restart. Returns false if it was
    /// already down (fault application treats that as a no-op).
    pub fn crash(&mut self, site: SiteId, kind: ServiceKind) -> bool {
        let e = self.entry_mut(site, kind);
        if !e.state.is_up() {
            return false;
        }
        e.state = Liveness::Crashed;
        e.crashes += 1;
        true
    }

    /// Halt the process with a restart scheduled at `until`. Returns false
    /// if it was already down.
    pub fn schedule_restart(&mut self, site: SiteId, kind: ServiceKind, until: SimTime) -> bool {
        let e = self.entry_mut(site, kind);
        if !e.state.is_up() {
            return false;
        }
        e.state = Liveness::RestartingAt(until);
        e.crashes += 1;
        true
    }

    /// Bring the process back up. Counts a restart only on a real
    /// transition (idempotent under double repair).
    pub fn mark_up(&mut self, site: SiteId, kind: ServiceKind) {
        let e = self.entry_mut(site, kind);
        if !e.state.is_up() {
            e.state = Liveness::Up;
            e.restarts += 1;
        }
    }

    /// Record one call the envelope refused or dropped before reaching the
    /// service.
    pub fn note_lost_call(&mut self, site: SiteId, kind: ServiceKind) {
        self.entry_mut(site, kind).dropped_calls += 1;
    }

    /// The earliest scheduled restart instant across every process — a
    /// campaign wake term.
    pub fn next_restart(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .flatten()
            .filter_map(|e| e.state.restart_at())
            .min()
    }

    /// Every entry, site-major (stable order for digests and status pages).
    pub fn iter(&self) -> impl Iterator<Item = &ProcessEntry> {
        self.entries.iter().flatten()
    }

    /// Processes currently down at `site`.
    pub fn down_at(&self, site: SiteId) -> Vec<&ProcessEntry> {
        self.entries[site.index()]
            .iter()
            .filter(|e| !e.state.is_up())
            .collect()
    }

    /// Per-kind lifetime counters `(kind name, crashes, restarts,
    /// dropped calls)`, in [`ServiceKind::ALL`] order, all-zero rows
    /// skipped — the digest's per-service observables.
    pub fn counters_by_kind(&self) -> Vec<(String, u64, u64, u64)> {
        ServiceKind::ALL
            .iter()
            .enumerate()
            .filter_map(|(i, kind)| {
                let (mut c, mut r, mut d) = (0, 0, 0);
                for site in &self.entries {
                    c += site[i].crashes;
                    r += site[i].restarts;
                    d += site[i].dropped_calls;
                }
                (c + r + d > 0).then(|| (kind.to_string(), c, r, d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ProcessRegistry {
        ProcessRegistry::new(2, |s| Some(NodeId(s as u32 * 10)))
    }

    #[test]
    fn processes_start_up_and_pinned() {
        let r = reg();
        let site = SiteId(1);
        assert!(r.is_up(site, ServiceKind::OarServer));
        assert_eq!(r.entry(site, ServiceKind::OarServer).host, Some(NodeId(10)));
        assert_eq!(r.iter().count(), 2 * ServiceKind::ALL.len());
        assert!(r.next_restart().is_none());
    }

    #[test]
    fn crash_is_transition_guarded() {
        let mut r = reg();
        let site = SiteId(0);
        assert!(r.crash(site, ServiceKind::KadeployServer));
        assert!(!r.is_up(site, ServiceKind::KadeployServer));
        // Crashing a dead process is a no-op (fault application rejects it).
        assert!(!r.crash(site, ServiceKind::KadeployServer));
        assert_eq!(r.entry(site, ServiceKind::KadeployServer).crashes, 1);
        r.mark_up(site, ServiceKind::KadeployServer);
        assert!(r.is_up(site, ServiceKind::KadeployServer));
        r.mark_up(site, ServiceKind::KadeployServer);
        assert_eq!(r.entry(site, ServiceKind::KadeployServer).restarts, 1);
    }

    #[test]
    fn scheduled_restart_is_the_wake_term() {
        let mut r = reg();
        let at = SimTime::from_mins(45);
        assert!(r.schedule_restart(SiteId(0), ServiceKind::OarServer, at));
        assert!(r.schedule_restart(SiteId(1), ServiceKind::OarServer, SimTime::from_mins(30)));
        assert_eq!(r.next_restart(), Some(SimTime::from_mins(30)));
        r.mark_up(SiteId(1), ServiceKind::OarServer);
        assert_eq!(r.next_restart(), Some(at));
    }

    #[test]
    fn counters_roll_up_per_kind() {
        let mut r = reg();
        r.crash(SiteId(0), ServiceKind::OarServer);
        r.crash(SiteId(1), ServiceKind::OarServer);
        r.note_lost_call(SiteId(0), ServiceKind::OarServer);
        let rows = r.counters_by_kind();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], ("oar-server".to_string(), 2, 0, 1));
        assert_eq!(r.down_at(SiteId(0)).len(), 1);
    }
}

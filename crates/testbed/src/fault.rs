//! Fault injection: the paper's bug catalogue as stochastic processes.
//!
//! Slide 22 lists the classes of real bugs the framework uncovered; each is
//! a [`FaultKind`] here. Faults arrive following per-kind Poisson processes
//! (plus correlated "maintenance" events that drift several nodes of one
//! cluster at once, reproducing "could happen frequently: maintenance,
//! broken hardware" from slide 7). A fault mutates the testbed's actual
//! state; the description in the Reference API is *not* updated, which is
//! precisely the inconsistency the testing framework must detect.

use crate::ids::{ClusterId, NodeId, SiteId};
use crate::services::ServiceKind;
use crate::testbed::Testbed;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use ttt_sim::{PoissonProcess, SimTime};

/// Unique identifier of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultId(pub u64);

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault-{}", self.0)
    }
}

/// The classes of problems the paper reports (slides 13 & 22).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// Disk volatile write cache toggled away from the reference setting.
    DiskWriteCacheDrift,
    /// Disk firmware downgraded to a known-bad revision.
    DiskFirmwareDrift,
    /// Deep C-states enabled while the reference disables them.
    CpuCStatesDrift,
    /// Hyperthreading toggled away from the reference setting.
    HyperthreadingDrift,
    /// Turbo boost toggled away from the reference setting.
    TurboDrift,
    /// BIOS downgraded/not upgraded relative to the cluster reference.
    BiosVersionDrift,
    /// A DIMM failed; the BIOS masks it and the node loses memory.
    DimmFailure,
    /// NIC negotiated a lower link rate (bad cable/port).
    NicDowngrade,
    /// Power-monitoring wiring swapped between two nodes.
    CablingSwap,
    /// Kernel race condition delaying boots.
    KernelBootRace,
    /// Node reboots spontaneously (the decommissioned-cluster bug).
    RandomReboots,
    /// OFED stack randomly fails to start Infiniband applications.
    OfedFlaky,
    /// Serial console unreachable.
    ConsoleDead,
    /// Switch port refuses VLAN reconfiguration.
    VlanPortStuck,
    /// A site service became flaky.
    ServiceFlaky,
    /// A site service went down entirely.
    ServiceDown,
    /// Node hardware died outright.
    NodeDead,
    /// A whole site lost power: every node of the site is unreachable
    /// until the outage is repaired (the multi-site failure class the
    /// single-domain model could never express).
    SitePowerOutage,
    /// The backbone link between two sites is partitioned.
    SiteLinkPartition,
    /// A site's clock drifted away from the federation's NTP reference.
    ClockSkew,
    /// A service *process* halted outright: calls are refused (connection
    /// refused, not an unhealthy reply) until an operator repair restarts
    /// it. Distinct from [`FaultKind::ServiceDown`], which models broken
    /// service logic on a running process.
    ServiceCrash,
    /// A service process went down for a bounded restart window; the
    /// campaign driver completes the restart on its own (the restart
    /// instant is a wake term).
    ServiceRestart,
    /// A site's service links degraded: every enveloped call into the site
    /// gains latency and may be dropped.
    RpcDegraded,
}

impl FaultKind {
    /// All kinds, in a stable order. The first [`FaultKind::LEGACY`] are
    /// the pre-process-layer catalogue; scenario expansion from a bare seed
    /// draws only from that prefix (appending kinds must never shift an
    /// existing seed's draws), so the service-process kinds enter scenarios
    /// via frontier cells and mutation only.
    pub const ALL: [FaultKind; 23] = [
        FaultKind::DiskWriteCacheDrift,
        FaultKind::DiskFirmwareDrift,
        FaultKind::CpuCStatesDrift,
        FaultKind::HyperthreadingDrift,
        FaultKind::TurboDrift,
        FaultKind::BiosVersionDrift,
        FaultKind::DimmFailure,
        FaultKind::NicDowngrade,
        FaultKind::CablingSwap,
        FaultKind::KernelBootRace,
        FaultKind::RandomReboots,
        FaultKind::OfedFlaky,
        FaultKind::ConsoleDead,
        FaultKind::VlanPortStuck,
        FaultKind::ServiceFlaky,
        FaultKind::ServiceDown,
        FaultKind::NodeDead,
        FaultKind::SitePowerOutage,
        FaultKind::SiteLinkPartition,
        FaultKind::ClockSkew,
        FaultKind::ServiceCrash,
        FaultKind::ServiceRestart,
        FaultKind::RpcDegraded,
    ];

    /// How many kinds predate the service-process layer (the prefix of
    /// [`FaultKind::ALL`] that bare-seed scenario expansion draws from).
    pub const LEGACY: usize = 20;

    /// The site-scoped kinds (target whole sites or inter-site links, not
    /// individual nodes or services). Deliberately excludes
    /// [`FaultKind::RpcDegraded`]: growing this list would change how
    /// existing fuzzer cells pin site faults.
    pub const SITE_SCOPED: [FaultKind; 3] = [
        FaultKind::SitePowerOutage,
        FaultKind::SiteLinkPartition,
        FaultKind::ClockSkew,
    ];

    /// The service-process kinds introduced with the simulated process
    /// layer (killable processes + degraded service links).
    pub const SERVICE_PROCESS: [FaultKind; 3] = [
        FaultKind::ServiceCrash,
        FaultKind::ServiceRestart,
        FaultKind::RpcDegraded,
    ];

    /// Short stable name used in bug signatures.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DiskWriteCacheDrift => "disk-write-cache",
            FaultKind::DiskFirmwareDrift => "disk-firmware",
            FaultKind::CpuCStatesDrift => "cpu-cstates",
            FaultKind::HyperthreadingDrift => "cpu-ht",
            FaultKind::TurboDrift => "cpu-turbo",
            FaultKind::BiosVersionDrift => "bios-version",
            FaultKind::DimmFailure => "dimm-failure",
            FaultKind::NicDowngrade => "nic-downgrade",
            FaultKind::CablingSwap => "cabling-swap",
            FaultKind::KernelBootRace => "kernel-boot-race",
            FaultKind::RandomReboots => "random-reboots",
            FaultKind::OfedFlaky => "ofed-flaky",
            FaultKind::ConsoleDead => "console-dead",
            FaultKind::VlanPortStuck => "vlan-port-stuck",
            FaultKind::ServiceFlaky => "service-flaky",
            FaultKind::ServiceDown => "service-down",
            FaultKind::NodeDead => "node-dead",
            FaultKind::SitePowerOutage => "site-power-outage",
            FaultKind::SiteLinkPartition => "site-link-partition",
            FaultKind::ClockSkew => "clock-skew",
            FaultKind::ServiceCrash => "service-crash",
            FaultKind::ServiceRestart => "service-restart",
            FaultKind::RpcDegraded => "rpc-degraded",
        }
    }

    /// Whether this fault targets a single node.
    pub fn is_node_fault(self) -> bool {
        !matches!(
            self,
            FaultKind::CablingSwap
                | FaultKind::ServiceFlaky
                | FaultKind::ServiceDown
                | FaultKind::SitePowerOutage
                | FaultKind::SiteLinkPartition
                | FaultKind::ClockSkew
                | FaultKind::ServiceCrash
                | FaultKind::ServiceRestart
                | FaultKind::RpcDegraded
        )
    }

    /// Whether this fault targets a site or an inter-site link.
    pub fn is_site_fault(self) -> bool {
        Self::SITE_SCOPED.contains(&self)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// A single node.
    Node(NodeId),
    /// A pair of nodes (cabling swaps).
    NodePair(NodeId, NodeId),
    /// A site service.
    Service(SiteId, ServiceKind),
    /// A whole site (power outages, clock skew).
    Site(SiteId),
    /// The backbone link between two sites (stored with the lower id
    /// first; [`Testbed::apply_fault`] normalizes).
    SiteLink(SiteId, SiteId),
}

/// An injected, currently-active fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Unique id.
    pub id: FaultId,
    /// Fault class.
    pub kind: FaultKind,
    /// What it applies to.
    pub target: FaultTarget,
    /// When it was injected.
    pub injected_at: SimTime,
}

impl Fault {
    /// Stable signature used for bug deduplication, e.g.
    /// `"disk-write-cache@node-17"`.
    pub fn signature(&self) -> String {
        match self.target {
            FaultTarget::Node(n) => format!("{}@{}", self.kind, n),
            FaultTarget::NodePair(a, b) => format!("{}@{}+{}", self.kind, a, b),
            FaultTarget::Service(s, k) => format!("{}@{}/{}", self.kind, s, k),
            FaultTarget::Site(s) => format!("{}@{}", self.kind, s),
            FaultTarget::SiteLink(a, b) => format!("{}@{}~{}", self.kind, a, b),
        }
    }

    /// The cluster a node-fault belongs to, looked up through the testbed.
    pub fn cluster_of(&self, tb: &Testbed) -> Option<ClusterId> {
        match self.target {
            FaultTarget::Node(n) | FaultTarget::NodePair(n, _) => Some(tb.node(n).cluster),
            FaultTarget::Service(..) | FaultTarget::Site(..) | FaultTarget::SiteLink(..) => None,
        }
    }
}

/// Per-kind arrival rates, in expected events per day across the whole
/// testbed. The defaults are tuned so a paper-scale campaign accumulates
/// roughly the paper's bug volume over several months (experiment E8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectorConfig {
    /// `(kind, events/day)` pairs; kinds not listed never fire.
    pub rates_per_day: Vec<(FaultKind, f64)>,
    /// Rate of maintenance events per day; each drifts a random
    /// configuration setting on several nodes of one cluster.
    pub maintenance_per_day: f64,
    /// How many nodes a maintenance event touches (upper bound).
    pub maintenance_spread: usize,
}

impl Default for InjectorConfig {
    fn default() -> Self {
        InjectorConfig {
            rates_per_day: vec![
                (FaultKind::DiskWriteCacheDrift, 0.10),
                (FaultKind::DiskFirmwareDrift, 0.06),
                (FaultKind::CpuCStatesDrift, 0.10),
                (FaultKind::HyperthreadingDrift, 0.05),
                (FaultKind::TurboDrift, 0.05),
                (FaultKind::BiosVersionDrift, 0.08),
                (FaultKind::DimmFailure, 0.08),
                (FaultKind::NicDowngrade, 0.05),
                (FaultKind::CablingSwap, 0.03),
                (FaultKind::KernelBootRace, 0.04),
                (FaultKind::RandomReboots, 0.02),
                (FaultKind::OfedFlaky, 0.04),
                (FaultKind::ConsoleDead, 0.05),
                (FaultKind::VlanPortStuck, 0.03),
                (FaultKind::ServiceFlaky, 0.08),
                (FaultKind::ServiceDown, 0.03),
                (FaultKind::NodeDead, 0.04),
                (FaultKind::SitePowerOutage, 0.01),
                (FaultKind::SiteLinkPartition, 0.02),
                (FaultKind::ClockSkew, 0.03),
                (FaultKind::ServiceCrash, 0.02),
                (FaultKind::ServiceRestart, 0.04),
                (FaultKind::RpcDegraded, 0.03),
            ],
            maintenance_per_day: 0.10,
            maintenance_spread: 6,
        }
    }
}

impl InjectorConfig {
    /// A configuration that never injects anything (clean-testbed baseline).
    pub fn quiescent() -> Self {
        InjectorConfig {
            rates_per_day: Vec::new(),
            maintenance_per_day: 0.0,
            maintenance_spread: 0,
        }
    }

    /// Scale every rate by `factor` (ablation sweeps).
    pub fn scaled(mut self, factor: f64) -> Self {
        for (_, r) in &mut self.rates_per_day {
            *r *= factor;
        }
        self.maintenance_per_day *= factor;
        self
    }
}

/// Drives fault arrivals over virtual time.
///
/// The injector pre-draws the next arrival per kind and applies due faults
/// to the testbed as the campaign advances. All randomness comes from the
/// RNG handed to [`FaultInjector::advance`], so campaigns are reproducible.
#[derive(Debug)]
pub struct FaultInjector {
    config: InjectorConfig,
    /// Next pending arrival for each rate entry (same index), if any.
    next_arrival: Vec<Option<SimTime>>,
    next_maintenance: Option<SimTime>,
    primed: bool,
}

impl FaultInjector {
    /// Create an injector with the given configuration.
    pub fn new(config: InjectorConfig) -> Self {
        let n = config.rates_per_day.len();
        FaultInjector {
            config,
            next_arrival: vec![None; n],
            next_maintenance: None,
            primed: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &InjectorConfig {
        &self.config
    }

    fn prime<R: Rng>(&mut self, now: SimTime, rng: &mut R) {
        for (i, (_, rate)) in self.config.rates_per_day.iter().enumerate() {
            self.next_arrival[i] = PoissonProcess::per_day(*rate).next_after(now, rng);
        }
        self.next_maintenance =
            PoissonProcess::per_day(self.config.maintenance_per_day).next_after(now, rng);
        self.primed = true;
    }

    /// The earliest pending arrival (fault or maintenance), if any.
    ///
    /// Primes the per-kind arrival draws on first use — the same draws, in
    /// the same stream order, that [`FaultInjector::advance`] would make —
    /// so an event-driven campaign engine can ask "when does the next fault
    /// land?" without disturbing determinism.
    pub fn next_event<R: Rng>(&mut self, rng: &mut R) -> Option<SimTime> {
        if !self.primed {
            self.prime(SimTime::ZERO, rng);
        }
        self.next_arrival
            .iter()
            .flatten()
            .copied()
            .chain(self.next_maintenance)
            .min()
    }

    /// Advance virtual time to `until`, injecting every due fault into the
    /// testbed. Returns the newly injected faults (some arrivals may be
    /// no-ops if the drawn target already carries the fault).
    pub fn advance<R: Rng>(
        &mut self,
        until: SimTime,
        tb: &mut Testbed,
        rng: &mut R,
    ) -> Vec<Fault> {
        if !self.primed {
            self.prime(SimTime::ZERO, rng);
        }
        let mut injected = Vec::new();
        loop {
            // Find the earliest pending arrival across kinds + maintenance.
            let mut best: Option<(usize, SimTime)> = None;
            for (i, t) in self.next_arrival.iter().enumerate() {
                if let Some(t) = t {
                    if *t <= until && best.is_none_or(|(_, bt)| *t < bt) {
                        best = Some((i, *t));
                    }
                }
            }
            let maint_first = match (self.next_maintenance, best) {
                (Some(mt), Some((_, bt))) => mt <= until && mt < bt,
                (Some(mt), None) => mt <= until,
                _ => false,
            };
            if maint_first {
                let at = self.next_maintenance.unwrap();
                injected.extend(self.run_maintenance(at, tb, rng));
                self.next_maintenance = PoissonProcess::per_day(self.config.maintenance_per_day)
                    .next_after(at, rng);
                continue;
            }
            let Some((idx, at)) = best else { break };
            let kind = self.config.rates_per_day[idx].0;
            if let Some(fault) = inject_random(kind, at, tb, rng) {
                injected.push(fault);
            }
            self.next_arrival[idx] =
                PoissonProcess::per_day(self.config.rates_per_day[idx].1).next_after(at, rng);
        }
        injected
    }

    /// A maintenance event: pick one cluster, drift one config setting on
    /// up to `maintenance_spread` of its nodes.
    fn run_maintenance<R: Rng>(
        &self,
        at: SimTime,
        tb: &mut Testbed,
        rng: &mut R,
    ) -> Vec<Fault> {
        const DRIFT_KINDS: [FaultKind; 5] = [
            FaultKind::DiskWriteCacheDrift,
            FaultKind::CpuCStatesDrift,
            FaultKind::HyperthreadingDrift,
            FaultKind::TurboDrift,
            FaultKind::BiosVersionDrift,
        ];
        let Some(cluster) = tb.clusters().choose(rng).map(|c| c.id) else {
            return Vec::new();
        };
        let kind = *DRIFT_KINDS.choose(rng).unwrap();
        let mut nodes: Vec<NodeId> = tb.cluster(cluster).nodes.clone();
        nodes.shuffle(rng);
        let spread = rng.gen_range(1..=self.config.maintenance_spread.max(1));
        nodes
            .into_iter()
            .take(spread)
            .filter_map(|n| tb.apply_fault(kind, FaultTarget::Node(n), at))
            .collect()
    }
}

/// Draw a random valid target for `kind` and apply it to the testbed.
/// Returns `None` when the fault would be a no-op (already present).
pub fn inject_random<R: Rng>(
    kind: FaultKind,
    at: SimTime,
    tb: &mut Testbed,
    rng: &mut R,
) -> Option<Fault> {
    let target = match kind {
        FaultKind::CablingSwap => {
            // Two distinct nodes of the same cluster (real swaps happen
            // within a rack).
            let cluster = tb.clusters().choose(rng)?.id;
            let nodes = &tb.cluster(cluster).nodes;
            if nodes.len() < 2 {
                return None;
            }
            let mut pick = nodes.clone();
            pick.shuffle(rng);
            FaultTarget::NodePair(pick[0], pick[1])
        }
        FaultKind::ServiceFlaky
        | FaultKind::ServiceDown
        | FaultKind::ServiceCrash
        | FaultKind::ServiceRestart => {
            let site = SiteId((rng.gen_range(0..tb.sites().len())) as u16);
            let svc = *ServiceKind::ALL.choose(rng).unwrap();
            FaultTarget::Service(site, svc)
        }
        FaultKind::SitePowerOutage | FaultKind::ClockSkew | FaultKind::RpcDegraded => {
            let site = SiteId((rng.gen_range(0..tb.sites().len())) as u16);
            FaultTarget::Site(site)
        }
        FaultKind::SiteLinkPartition => {
            // Two distinct sites; single-site testbeds have no links.
            let n = tb.sites().len();
            if n < 2 {
                return None;
            }
            let a = rng.gen_range(0..n);
            let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
            FaultTarget::SiteLink(SiteId(a as u16), SiteId(b as u16))
        }
        FaultKind::OfedFlaky => {
            // Only meaningful on Infiniband nodes.
            let ib_nodes: Vec<NodeId> = tb
                .clusters()
                .iter()
                .filter(|c| c.has_ib)
                .flat_map(|c| c.nodes.iter().copied())
                .collect();
            FaultTarget::Node(*ib_nodes.choose(rng)?)
        }
        _ => {
            let n = tb.nodes().len();
            FaultTarget::Node(NodeId(rng.gen_range(0..n) as u32))
        }
    };
    tb.apply_fault(kind, target, at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TestbedBuilder;
    use ttt_sim::rng::stream_rng;

    #[test]
    fn signatures_are_stable_and_distinct() {
        let f1 = Fault {
            id: FaultId(1),
            kind: FaultKind::DiskWriteCacheDrift,
            target: FaultTarget::Node(NodeId(17)),
            injected_at: SimTime::ZERO,
        };
        let f2 = Fault {
            id: FaultId(2),
            kind: FaultKind::DiskWriteCacheDrift,
            target: FaultTarget::Node(NodeId(18)),
            injected_at: SimTime::ZERO,
        };
        assert_eq!(f1.signature(), "disk-write-cache@node-17");
        assert_ne!(f1.signature(), f2.signature());
    }

    #[test]
    fn all_kind_names_unique() {
        let names: std::collections::HashSet<&str> =
            FaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }

    #[test]
    fn injector_respects_rates() {
        let mut tb = TestbedBuilder::small().build();
        let cfg = InjectorConfig {
            rates_per_day: vec![(FaultKind::ConsoleDead, 1.0)],
            maintenance_per_day: 0.0,
            maintenance_spread: 0,
        };
        let mut inj = FaultInjector::new(cfg);
        let mut rng = stream_rng(11, "inject");
        let faults = inj.advance(SimTime::from_days(60), &mut tb, &mut rng);
        // ~60 arrivals, but deduplicated onto a small testbed: at most the
        // node count, at least a handful.
        assert!(!faults.is_empty());
        assert!(faults.iter().all(|f| f.kind == FaultKind::ConsoleDead));
        assert!(faults.len() <= tb.nodes().len());
    }

    #[test]
    fn quiescent_config_injects_nothing() {
        let mut tb = TestbedBuilder::small().build();
        let mut inj = FaultInjector::new(InjectorConfig::quiescent());
        let mut rng = stream_rng(11, "inject");
        let faults = inj.advance(SimTime::from_days(365), &mut tb, &mut rng);
        assert!(faults.is_empty());
        assert_eq!(tb.active_faults().len(), 0);
    }

    #[test]
    fn maintenance_drifts_cluster_nodes() {
        let mut tb = TestbedBuilder::small().build();
        let cfg = InjectorConfig {
            rates_per_day: Vec::new(),
            maintenance_per_day: 0.5,
            maintenance_spread: 4,
        };
        let mut inj = FaultInjector::new(cfg);
        let mut rng = stream_rng(12, "maint");
        let faults = inj.advance(SimTime::from_days(30), &mut tb, &mut rng);
        assert!(!faults.is_empty());
        // Maintenance only produces configuration-drift faults.
        assert!(faults.iter().all(|f| matches!(
            f.kind,
            FaultKind::DiskWriteCacheDrift
                | FaultKind::CpuCStatesDrift
                | FaultKind::HyperthreadingDrift
                | FaultKind::TurboDrift
                | FaultKind::BiosVersionDrift
        )));
    }

    #[test]
    fn injector_is_deterministic() {
        let run = |seed: u64| {
            let mut tb = TestbedBuilder::small().build();
            let mut inj = FaultInjector::new(InjectorConfig::default());
            let mut rng = stream_rng(seed, "inject");
            inj.advance(SimTime::from_days(90), &mut tb, &mut rng)
                .iter()
                .map(|f| f.signature())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn next_event_matches_advance_stream() {
        // Asking for the next arrival first must not change which faults
        // land (it primes with the exact draws advance would make).
        let run = |peek: bool| {
            let mut tb = TestbedBuilder::small().build();
            let mut inj = FaultInjector::new(InjectorConfig::default());
            let mut rng = stream_rng(7, "inject");
            let peeked = if peek { inj.next_event(&mut rng) } else { None };
            let sigs: Vec<String> = inj
                .advance(SimTime::from_days(30), &mut tb, &mut rng)
                .iter()
                .map(|f| f.signature())
                .collect();
            (peeked, sigs)
        };
        let (peeked, with_peek) = run(true);
        let (_, without_peek) = run(false);
        assert_eq!(with_peek, without_peek);
        let t = peeked.expect("default config has arrivals");
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn next_event_none_when_quiescent() {
        let mut inj = FaultInjector::new(InjectorConfig::quiescent());
        let mut rng = stream_rng(7, "inject");
        assert_eq!(inj.next_event(&mut rng), None);
    }

    #[test]
    fn scaled_config_scales() {
        let base = InjectorConfig::default();
        let double = base.clone().scaled(2.0);
        for ((_, a), (_, b)) in base.rates_per_day.iter().zip(&double.rates_per_day) {
            assert!((b / a - 2.0).abs() < 1e-12);
        }
    }
}

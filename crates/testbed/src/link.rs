//! Pluggable backbone link models.
//!
//! The generator wires every site pair with a full-mesh [`crate::topology::SiteLink`]
//! backbone, but until now the links were binary: up (free, instant,
//! lossless) or partitioned. A [`LinkModel`] attaches *degree* to the
//! backbone — per-pair latency and loss that every enveloped service call
//! and every federation placement probe sees — so partitions and skew
//! become the far end of a continuum instead of a separate kind.
//!
//! Three models ship:
//!
//! * [`Ideal`] — the historical behavior: no added latency, no loss, **no
//!   RNG draws**. This is the default, and campaigns running it are
//!   byte-identical to campaigns built before link models existed.
//! * [`Uniform`] — every distinct-site pair shares one latency/loss
//!   figure (a flat WAN).
//! * [`DistanceTiered`] — latency and loss grow with site-index distance
//!   (sites are laid out along the backbone in id order, like the
//!   dark-fibre ring of the real federation): near pairs are cheap and
//!   lossless, far pairs are slow and lossy.
//!
//! Determinism contract: a model's [`LinkModel::quality`] is a pure
//! function of the site pair. The *caller* decides whether a loss draw
//! happens (only when `loss_prob > 0`), so arming a latency-only model
//! never shifts an RNG stream, and the Ideal model never draws at all.

use crate::ids::SiteId;
use serde::{Deserialize, Serialize};
use ttt_sim::LinkQuality;

/// A model assigning link quality to backbone site pairs.
pub trait LinkModel {
    /// Quality of the path `from → to`. `None` means an ideal hop: zero
    /// added latency, no loss, and — by the determinism contract — no RNG
    /// draw at the callsite. Same-site paths are always ideal.
    fn quality(&self, from: SiteId, to: SiteId) -> Option<LinkQuality>;
}

/// The historical free backbone: every path ideal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ideal;

impl LinkModel for Ideal {
    fn quality(&self, _from: SiteId, _to: SiteId) -> Option<LinkQuality> {
        None
    }
}

/// One flat latency/loss figure for every distinct-site pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    /// Added one-way latency per enveloped call, seconds.
    pub latency_s: f64,
    /// Probability an enveloped call is dropped in flight.
    pub loss_prob: f64,
}

impl LinkModel for Uniform {
    fn quality(&self, from: SiteId, to: SiteId) -> Option<LinkQuality> {
        if from == to {
            return None;
        }
        Some(LinkQuality {
            latency_s: self.latency_s,
            loss_prob: self.loss_prob,
        })
    }
}

/// Latency/loss tiers by site-index distance: neighbours are near-ideal,
/// far pairs cross several backbone segments and pay for each.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceTiered;

impl DistanceTiered {
    /// The tier boundaries, `(max_distance, latency_s, loss_prob)` — public
    /// so docs and tests agree with the implementation.
    pub const TIERS: [(u16, f64, f64); 3] = [
        (1, 0.002, 0.0),
        (4, 0.010, 0.01),
        (u16::MAX, 0.030, 0.05),
    ];
}

impl LinkModel for DistanceTiered {
    fn quality(&self, from: SiteId, to: SiteId) -> Option<LinkQuality> {
        if from == to {
            return None;
        }
        let d = from.0.abs_diff(to.0);
        let &(_, latency_s, loss_prob) = Self::TIERS
            .iter()
            .find(|&&(max, _, _)| d <= max)
            .expect("last tier is unbounded");
        Some(LinkQuality {
            latency_s,
            loss_prob,
        })
    }
}

/// The serializable per-scenario selection of a link model. This is what
/// scenario files carry and what the campaign config stores; it dispatches
/// to the three concrete models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LinkModelSpec {
    /// [`Ideal`]: the historical free backbone (the default).
    #[default]
    Ideal,
    /// [`Uniform`]: one latency/loss figure for every distinct-site pair.
    Uniform {
        /// Added one-way latency per enveloped call, seconds.
        latency_s: f64,
        /// Probability an enveloped call is dropped in flight.
        loss_prob: f64,
    },
    /// [`DistanceTiered`]: quality degrades with site-index distance.
    DistanceTiered,
}

impl LinkModelSpec {
    /// Whether this is the ideal (no-op, draw-free) model.
    pub fn is_ideal(&self) -> bool {
        matches!(self, LinkModelSpec::Ideal)
    }
}

impl LinkModel for LinkModelSpec {
    fn quality(&self, from: SiteId, to: SiteId) -> Option<LinkQuality> {
        match *self {
            LinkModelSpec::Ideal => Ideal.quality(from, to),
            LinkModelSpec::Uniform {
                latency_s,
                loss_prob,
            } => Uniform {
                latency_s,
                loss_prob,
            }
            .quality(from, to),
            LinkModelSpec::DistanceTiered => DistanceTiered.quality(from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_always_free() {
        for a in 0..4u16 {
            for b in 0..4u16 {
                assert_eq!(Ideal.quality(SiteId(a), SiteId(b)), None);
            }
        }
        assert!(LinkModelSpec::default().is_ideal());
    }

    #[test]
    fn uniform_spares_same_site_paths() {
        let m = Uniform {
            latency_s: 0.02,
            loss_prob: 0.1,
        };
        assert_eq!(m.quality(SiteId(2), SiteId(2)), None);
        let q = m.quality(SiteId(0), SiteId(3)).unwrap();
        assert_eq!(q.latency_s, 0.02);
        assert_eq!(q.loss_prob, 0.1);
    }

    #[test]
    fn distance_tiers_are_monotone() {
        let m = DistanceTiered;
        assert_eq!(m.quality(SiteId(5), SiteId(5)), None);
        let near = m.quality(SiteId(0), SiteId(1)).unwrap();
        let mid = m.quality(SiteId(0), SiteId(3)).unwrap();
        let far = m.quality(SiteId(0), SiteId(7)).unwrap();
        assert!(near.latency_s < mid.latency_s);
        assert!(mid.latency_s < far.latency_s);
        assert!(near.loss_prob < mid.loss_prob);
        assert!(mid.loss_prob < far.loss_prob);
        // Symmetric in the pair.
        assert_eq!(m.quality(SiteId(7), SiteId(0)), Some(far));
    }

    #[test]
    fn spec_dispatches_to_the_models() {
        let pair = (SiteId(0), SiteId(2));
        assert_eq!(LinkModelSpec::Ideal.quality(pair.0, pair.1), None);
        assert_eq!(
            LinkModelSpec::Uniform {
                latency_s: 0.005,
                loss_prob: 0.0
            }
            .quality(pair.0, pair.1),
            Some(LinkQuality {
                latency_s: 0.005,
                loss_prob: 0.0
            })
        );
        assert_eq!(
            LinkModelSpec::DistanceTiered.quality(pair.0, pair.1),
            DistanceTiered.quality(pair.0, pair.1)
        );
    }

    #[test]
    fn spec_roundtrips_through_serde_value() {
        use serde::{Deserialize as _, Serialize as _};
        for spec in [
            LinkModelSpec::Ideal,
            LinkModelSpec::Uniform {
                latency_s: 0.25,
                loss_prob: 0.125,
            },
            LinkModelSpec::DistanceTiered,
        ] {
            let v = spec.to_value();
            assert_eq!(LinkModelSpec::from_value(&v).unwrap(), spec);
        }
    }
}

//! Hardware description of a node.
//!
//! These structures play a double role: they are the *actual* state of each
//! simulated node (which faults mutate) and, cloned at snapshot time, the
//! *described* state stored in the Reference API. The g5k-checks
//! reproduction (`ttt-nodecheck`) diffs one against the other, exactly like
//! the real tool diffs OHAI/ethtool output against the Reference API.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Node/chassis manufacturer. The `dellbios` test family (slide 21) only
/// applies to Dell clusters, whose BIOS requires manual configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Dell PowerEdge family.
    Dell,
    /// HPE ProLiant family.
    Hp,
    /// Bull/Atos Novascale family.
    Bull,
    /// IBM/Lenovo System x family.
    Ibm,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Vendor::Dell => "Dell",
            Vendor::Hp => "HP",
            Vendor::Bull => "Bull",
            Vendor::Ibm => "IBM",
        };
        f.write_str(s)
    }
}

/// CPU frequency-scaling driver exposed by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PstateDriver {
    /// Legacy ACPI driver.
    AcpiCpufreq,
    /// Modern Intel driver.
    IntelPstate,
}

/// CPU package description, including the settings the paper lists as real
/// bug sources (power management / hyperthreading / turbo boost, slide 13).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing model name, e.g. `"Intel Xeon E5-2630 v3"`.
    pub model: String,
    /// Microarchitecture, e.g. `"Haswell"`.
    pub microarch: String,
    /// Number of populated sockets.
    pub sockets: u8,
    /// Physical cores per socket.
    pub cores_per_socket: u8,
    /// Hardware threads per core (2 when hyperthreading is on).
    pub threads_per_core: u8,
    /// Nominal frequency in MHz.
    pub base_freq_mhz: u32,
    /// Whether turbo boost is enabled in firmware.
    pub turbo_enabled: bool,
    /// Whether hyperthreading is enabled in firmware.
    pub ht_enabled: bool,
    /// Whether deep C-states are enabled (the paper's canonical subtle bug).
    pub cstates_enabled: bool,
    /// Frequency-scaling driver.
    pub pstate_driver: PstateDriver,
}

impl CpuSpec {
    /// Total physical cores across sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets as u32 * self.cores_per_socket as u32
    }

    /// Total hardware threads (cores × threads/core).
    pub fn total_threads(&self) -> u32 {
        self.total_cores() * self.threads_per_core as u32
    }
}

/// One memory module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dimm {
    /// Capacity in GiB.
    pub size_gb: u32,
    /// Transfer rate in MHz.
    pub mhz: u32,
}

/// Memory configuration: an ordered bank of DIMMs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSpec {
    /// Populated DIMMs in slot order.
    pub dimms: Vec<Dimm>,
}

impl MemSpec {
    /// Create a bank of `count` identical DIMMs.
    pub fn uniform(count: u32, size_gb: u32, mhz: u32) -> Self {
        MemSpec {
            dimms: (0..count).map(|_| Dimm { size_gb, mhz }).collect(),
        }
    }

    /// Total capacity in GiB.
    pub fn total_gb(&self) -> u32 {
        self.dimms.iter().map(|d| d.size_gb).sum()
    }
}

/// Rotational vs solid-state storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskKind {
    /// Spinning disk.
    Hdd,
    /// Flash storage.
    Ssd,
}

/// Disk host interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskInterface {
    /// SATA 3.
    Sata,
    /// Serial-attached SCSI.
    Sas,
    /// PCIe NVMe.
    Nvme,
}

/// One block device. Firmware version and cache toggles are first-class
/// because both are real bugs from the paper ("Different disk performance
/// due to different disk firmware versions", "disk cache settings").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Kernel device name, e.g. `"sda"`.
    pub device: String,
    /// Manufacturer, e.g. `"Seagate"`.
    pub vendor: String,
    /// Model string.
    pub model: String,
    /// Firmware revision, e.g. `"GA67"`.
    pub firmware: String,
    /// Capacity in GB.
    pub size_gb: u32,
    /// Rotational or solid-state.
    pub kind: DiskKind,
    /// Whether the volatile write cache is enabled.
    pub write_cache: bool,
    /// Whether the read-ahead cache is enabled.
    pub read_cache: bool,
    /// Host interface.
    pub interface: DiskInterface,
}

/// One network interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Kernel interface name, e.g. `"eth0"`.
    pub name: String,
    /// Controller model.
    pub model: String,
    /// Kernel driver name.
    pub driver: String,
    /// NIC firmware version.
    pub firmware: String,
    /// Negotiated link rate in Gbps (faults can downgrade it).
    pub rate_gbps: u32,
    /// Whether the interface is cabled and used by the testbed.
    pub mounted: bool,
}

/// BIOS/firmware description and settings, keyed by setting name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BiosSpec {
    /// Chassis vendor.
    pub vendor: Vendor,
    /// BIOS version string, e.g. `"2.4.3"`.
    pub version: String,
    /// Named firmware settings (ordered map so serialization is stable).
    pub settings: BTreeMap<String, String>,
}

/// Infiniband host channel adapter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IbSpec {
    /// HCA model, e.g. `"Mellanox ConnectX-3"`.
    pub hca: String,
    /// Link rate in Gbps (QDR = 40, FDR = 56).
    pub rate_gbps: u32,
}

/// GPU accelerator configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// GPU model.
    pub model: String,
    /// Number of devices per node.
    pub count: u8,
}

/// Full hardware description of one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeHardware {
    /// CPU package(s).
    pub cpu: CpuSpec,
    /// Memory bank.
    pub mem: MemSpec,
    /// Block devices in device order.
    pub disks: Vec<DiskSpec>,
    /// Network interfaces in kernel order.
    pub nics: Vec<NicSpec>,
    /// BIOS description.
    pub bios: BiosSpec,
    /// Infiniband adapter, if any.
    pub ib: Option<IbSpec>,
    /// GPUs, if any.
    pub gpu: Option<GpuSpec>,
}

impl NodeHardware {
    /// Total physical cores of the node.
    pub fn cores(&self) -> u32 {
        self.cpu.total_cores()
    }

    /// Usable memory in GiB (failed DIMMs removed by faults shrink this).
    pub fn memory_gb(&self) -> u32 {
        self.mem.total_gb()
    }

    /// The primary (first mounted) network interface, if any.
    pub fn primary_nic(&self) -> Option<&NicSpec> {
        self.nics.iter().find(|n| n.mounted)
    }

    /// The primary block device, if any.
    pub fn primary_disk(&self) -> Option<&DiskSpec> {
        self.disks.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuSpec {
        CpuSpec {
            model: "Intel Xeon E5-2630 v3".into(),
            microarch: "Haswell".into(),
            sockets: 2,
            cores_per_socket: 8,
            threads_per_core: 1,
            base_freq_mhz: 2400,
            turbo_enabled: false,
            ht_enabled: false,
            cstates_enabled: false,
            pstate_driver: PstateDriver::IntelPstate,
        }
    }

    #[test]
    fn cpu_core_math() {
        let c = cpu();
        assert_eq!(c.total_cores(), 16);
        assert_eq!(c.total_threads(), 16);
        let mut ht = c;
        ht.threads_per_core = 2;
        assert_eq!(ht.total_threads(), 32);
    }

    #[test]
    fn mem_totals() {
        let m = MemSpec::uniform(8, 16, 2133);
        assert_eq!(m.dimms.len(), 8);
        assert_eq!(m.total_gb(), 128);
        assert_eq!(MemSpec { dimms: vec![] }.total_gb(), 0);
    }

    #[test]
    fn primary_nic_skips_unmounted() {
        let hw = NodeHardware {
            cpu: cpu(),
            mem: MemSpec::uniform(4, 8, 1600),
            disks: vec![],
            nics: vec![
                NicSpec {
                    name: "eth0".into(),
                    model: "X".into(),
                    driver: "ixgbe".into(),
                    firmware: "1.0".into(),
                    rate_gbps: 10,
                    mounted: false,
                },
                NicSpec {
                    name: "eth1".into(),
                    model: "X".into(),
                    driver: "ixgbe".into(),
                    firmware: "1.0".into(),
                    rate_gbps: 10,
                    mounted: true,
                },
            ],
            bios: BiosSpec {
                vendor: Vendor::Dell,
                version: "1.0".into(),
                settings: BTreeMap::new(),
            },
            ib: None,
            gpu: None,
        };
        assert_eq!(hw.primary_nic().unwrap().name, "eth1");
        assert!(hw.primary_disk().is_none());
    }

    #[test]
    fn vendor_display() {
        assert_eq!(Vendor::Dell.to_string(), "Dell");
        assert_eq!(Vendor::Bull.to_string(), "Bull");
    }

    #[test]
    fn hardware_equality_detects_drift() {
        let a = NodeHardware {
            cpu: cpu(),
            mem: MemSpec::uniform(4, 8, 1600),
            disks: vec![],
            nics: vec![],
            bios: BiosSpec {
                vendor: Vendor::Dell,
                version: "2.4.3".into(),
                settings: BTreeMap::new(),
            },
            ib: None,
            gpu: None,
        };
        let mut b = a.clone();
        assert_eq!(a, b);
        b.cpu.cstates_enabled = true;
        assert_ne!(a, b);
    }
}

//! Network and power-monitoring topology.
//!
//! Two pieces matter for the paper's bug catalogue:
//!
//! * each node's NIC is cabled to a switch port — KaVLAN reconfigures port
//!   VLAN membership at this level;
//! * each node's power feed goes through a PDU port carrying a wattmeter —
//!   and the *wiring table* mapping wattmeters to nodes can be wrong
//!   ("Cabling issue → wrong measurements by testbed monitoring service",
//!   slide 13). The `CablingSwap` fault swaps two entries of this table,
//!   and the `kwapi` test family detects it by correlating induced load
//!   with measured power.

use crate::ids::{NodeId, PduId, SiteId, SwitchId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A switch port location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortRef {
    /// Owning switch.
    pub switch: SwitchId,
    /// Port number on the switch.
    pub port: u16,
}

/// A network switch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Switch {
    /// Dense identifier.
    pub id: SwitchId,
    /// Owning site.
    pub site: SiteId,
    /// Human name, e.g. `"gw-nancy-1"`.
    pub name: String,
    /// Number of ports.
    pub ports: u16,
}

/// A PDU (power strip with per-port wattmeters).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pdu {
    /// Dense identifier.
    pub id: PduId,
    /// Owning site.
    pub site: SiteId,
    /// Number of metered outlets.
    pub ports: u16,
}

/// A backbone link between two sites (the RENATER-style dark fibre of the
/// real testbed). Links are stored with `a < b`; the generator creates a
/// full mesh, and the `SiteLinkPartition` fault takes one down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteLink {
    /// Lower site endpoint.
    pub a: SiteId,
    /// Higher site endpoint.
    pub b: SiteId,
    /// Whether traffic currently flows.
    pub up: bool,
}

/// The full cabling state of the testbed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    /// All switches.
    pub switches: Vec<Switch>,
    /// All PDUs.
    pub pdus: Vec<Pdu>,
    /// Where each node's primary NIC is cabled.
    pub uplink: BTreeMap<NodeId, PortRef>,
    /// Power-monitoring wiring: `wattmeter_of[n]` is the node whose power
    /// the wattmeter *labelled* `n` actually measures. Identity when the
    /// cabling is correct; a `CablingSwap` fault swaps two entries.
    pub wattmeter_of: BTreeMap<NodeId, NodeId>,
    /// Inter-site backbone links (full mesh, endpoints ordered `a < b`).
    pub site_links: Vec<SiteLink>,
}

impl Topology {
    /// Register the full mesh of backbone links for `n_sites` sites, all up.
    pub fn mesh_sites(&mut self, n_sites: usize) {
        self.site_links.clear();
        for a in 0..n_sites {
            for b in (a + 1)..n_sites {
                self.site_links.push(SiteLink {
                    a: SiteId(a as u16),
                    b: SiteId(b as u16),
                    up: true,
                });
            }
        }
    }

    fn link_position(&self, a: SiteId, b: SiteId) -> Option<usize> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.site_links.iter().position(|l| l.a == lo && l.b == hi)
    }

    /// Whether traffic can flow between two sites. Intra-site traffic and
    /// unknown pairs (single-site testbeds) are always connected.
    pub fn sites_connected(&self, a: SiteId, b: SiteId) -> bool {
        if a == b {
            return true;
        }
        self.link_position(a, b)
            .map(|i| self.site_links[i].up)
            .unwrap_or(true)
    }

    /// Set one backbone link up or down. Returns false when the pair has no
    /// link (same site, or a site the mesh never covered).
    pub fn set_site_link(&mut self, a: SiteId, b: SiteId, up: bool) -> bool {
        match self.link_position(a, b) {
            Some(i) => {
                self.site_links[i].up = up;
                true
            }
            None => false,
        }
    }

    /// Count of currently partitioned site pairs.
    pub fn partitioned_pairs(&self) -> usize {
        self.site_links.iter().filter(|l| !l.up).count()
    }

    /// Register a node on a switch port and wire its wattmeter correctly.
    pub fn attach_node(&mut self, node: NodeId, port: PortRef) {
        self.uplink.insert(node, port);
        self.wattmeter_of.insert(node, node);
    }

    /// The node actually measured by the wattmeter labelled `label`.
    pub fn measured_node(&self, label: NodeId) -> NodeId {
        *self.wattmeter_of.get(&label).unwrap_or(&label)
    }

    /// Swap the power wiring of two nodes (the cabling-mistake fault).
    pub fn swap_wattmeters(&mut self, a: NodeId, b: NodeId) {
        let ma = self.measured_node(a);
        let mb = self.measured_node(b);
        self.wattmeter_of.insert(a, mb);
        self.wattmeter_of.insert(b, ma);
    }

    /// Whether the monitoring wiring is the identity for `label`.
    pub fn wiring_correct(&self, label: NodeId) -> bool {
        self.measured_node(label) == label
    }

    /// Count of mis-wired wattmeters.
    pub fn miswired_count(&self) -> usize {
        self.wattmeter_of.iter().filter(|(k, v)| k != v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(sw: u16, p: u16) -> PortRef {
        PortRef {
            switch: SwitchId(sw),
            port: p,
        }
    }

    #[test]
    fn attach_wires_identity() {
        let mut t = Topology::default();
        t.attach_node(NodeId(1), port(0, 1));
        t.attach_node(NodeId(2), port(0, 2));
        assert_eq!(t.measured_node(NodeId(1)), NodeId(1));
        assert!(t.wiring_correct(NodeId(2)));
        assert_eq!(t.miswired_count(), 0);
    }

    #[test]
    fn swap_miswires_both() {
        let mut t = Topology::default();
        t.attach_node(NodeId(1), port(0, 1));
        t.attach_node(NodeId(2), port(0, 2));
        t.swap_wattmeters(NodeId(1), NodeId(2));
        assert_eq!(t.measured_node(NodeId(1)), NodeId(2));
        assert_eq!(t.measured_node(NodeId(2)), NodeId(1));
        assert_eq!(t.miswired_count(), 2);
        // Swapping back repairs it.
        t.swap_wattmeters(NodeId(1), NodeId(2));
        assert_eq!(t.miswired_count(), 0);
    }

    #[test]
    fn double_swap_chains() {
        let mut t = Topology::default();
        for i in 1..=3 {
            t.attach_node(NodeId(i), port(0, i as u16));
        }
        t.swap_wattmeters(NodeId(1), NodeId(2));
        t.swap_wattmeters(NodeId(2), NodeId(3));
        // 1→2 was swapped, then 2 (now measuring 1) swapped with 3.
        assert_eq!(t.measured_node(NodeId(1)), NodeId(2));
        assert_eq!(t.measured_node(NodeId(2)), NodeId(3));
        assert_eq!(t.measured_node(NodeId(3)), NodeId(1));
        assert_eq!(t.miswired_count(), 3);
    }

    #[test]
    fn unknown_label_measures_itself() {
        let t = Topology::default();
        assert_eq!(t.measured_node(NodeId(99)), NodeId(99));
    }

    #[test]
    fn site_mesh_connects_every_pair() {
        let mut t = Topology::default();
        t.mesh_sites(3);
        assert_eq!(t.site_links.len(), 3);
        for a in 0..3u16 {
            for b in 0..3u16 {
                assert!(t.sites_connected(SiteId(a), SiteId(b)));
            }
        }
        assert_eq!(t.partitioned_pairs(), 0);
    }

    #[test]
    fn link_partition_and_repair_in_either_order() {
        let mut t = Topology::default();
        t.mesh_sites(3);
        // Endpoint order must not matter.
        assert!(t.set_site_link(SiteId(2), SiteId(0), false));
        assert!(!t.sites_connected(SiteId(0), SiteId(2)));
        assert!(!t.sites_connected(SiteId(2), SiteId(0)));
        // Unrelated pairs stay connected; intra-site always does.
        assert!(t.sites_connected(SiteId(0), SiteId(1)));
        assert!(t.sites_connected(SiteId(2), SiteId(2)));
        assert_eq!(t.partitioned_pairs(), 1);
        assert!(t.set_site_link(SiteId(0), SiteId(2), true));
        assert_eq!(t.partitioned_pairs(), 0);
    }

    #[test]
    fn unknown_pairs_count_as_connected() {
        let mut t = Topology::default();
        t.mesh_sites(1);
        assert!(t.site_links.is_empty());
        assert!(t.sites_connected(SiteId(0), SiteId(5)));
        assert!(!t.set_site_link(SiteId(0), SiteId(5), false));
    }
}

//! A site: a geographic location hosting clusters, switches and services.

use crate::ids::{ClusterId, SiteId, SwitchId};
use serde::{Deserialize, Serialize};

/// A testbed site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Dense identifier.
    pub id: SiteId,
    /// Site name, e.g. `"nancy"`.
    pub name: String,
    /// Clusters hosted at this site.
    pub clusters: Vec<ClusterId>,
    /// Switches at this site.
    pub switches: Vec<SwitchId>,
}

impl Site {
    /// Number of clusters at the site.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Site {
            id: SiteId(2),
            name: "rennes".into(),
            clusters: vec![ClusterId(5), ClusterId(6)],
            switches: vec![SwitchId(3)],
        };
        assert_eq!(s.cluster_count(), 2);
        assert_eq!(s.name, "rennes");
    }
}

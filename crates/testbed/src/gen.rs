//! Testbed generation.
//!
//! [`TestbedBuilder::paper_scale`] emits the configuration the paper reports
//! on slide 6 — **8 sites, 32 clusters, 894 nodes, 8490 cores** — with the
//! heterogeneity the paper blames for many bugs: hardware of different ages
//! and vendors, some clusters with Infiniband, some with introspectable HDD
//! arrays, one with GPUs. Counts of Dell (18), Infiniband (6) and
//! disk-checkable (14) clusters are chosen so the default test suite
//! reproduces the paper's 751 test configurations exactly (slide 21; see
//! DESIGN.md §4).

use crate::cluster::Cluster;
use crate::hardware::*;
use crate::ids::{ClusterId, NodeId, PduId, SiteId, SwitchId};
use crate::node::{Node, NodeCondition};
use crate::site::Site;
use crate::testbed::Testbed;
use crate::topology::{Pdu, PortRef, Switch, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Specification of one cluster to generate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster name.
    pub name: String,
    /// Site name (sites are created on first use, in order of appearance).
    pub site: String,
    /// Number of nodes.
    pub nodes: u32,
    /// Physical cores per node.
    pub cores_per_node: u32,
    /// Chassis vendor.
    pub vendor: Vendor,
    /// Whether nodes carry Infiniband HCAs.
    pub has_ib: bool,
    /// Whether the `disk` test family can introspect the disks.
    pub disk_checkable: bool,
    /// Whether nodes carry GPUs.
    pub has_gpu: bool,
}

impl ClusterSpec {
    /// Convenience constructor (GPU-less; chain [`ClusterSpec::with_gpu`]).
    pub fn new(
        name: &str,
        site: &str,
        nodes: u32,
        cores_per_node: u32,
        vendor: Vendor,
        has_ib: bool,
        disk_checkable: bool,
    ) -> Self {
        ClusterSpec {
            name: name.into(),
            site: site.into(),
            nodes,
            cores_per_node,
            vendor,
            has_ib,
            disk_checkable,
            has_gpu: false,
        }
    }

    /// Mark the cluster's nodes as carrying GPUs.
    pub fn with_gpu(mut self) -> Self {
        self.has_gpu = true;
        self
    }
}

/// Builds [`Testbed`]s from cluster specifications.
#[derive(Debug, Clone)]
pub struct TestbedBuilder {
    specs: Vec<ClusterSpec>,
}

impl TestbedBuilder {
    /// Build from explicit specifications.
    pub fn from_specs(specs: Vec<ClusterSpec>) -> Self {
        TestbedBuilder { specs }
    }

    /// The paper-scale testbed: 8 sites, 32 clusters, 894 nodes, 8490 cores.
    pub fn paper_scale() -> Self {
        use Vendor::*;
        let s = |n, st, nn, c, v, ib, dc| ClusterSpec::new(n, st, nn, c, v, ib, dc);
        TestbedBuilder {
            specs: vec![
                // nancy (7 clusters)
                s("graphene", "nancy", 140, 4, Dell, true, false),
                s("griffon", "nancy", 92, 8, Dell, true, false),
                s("graphite", "nancy", 7, 16, Dell, false, false),
                s("grimoire", "nancy", 8, 16, Dell, false, true),
                s("grisou", "nancy", 24, 16, Dell, false, true),
                s("grele", "nancy", 10, 12, Dell, true, false).with_gpu(),
                s("griffu", "nancy", 10, 20, Dell, false, false),
                // rennes (5 clusters)
                s("paravance", "rennes", 38, 16, Dell, false, true),
                s("parapide", "rennes", 24, 8, Dell, true, false),
                s("parasilo", "rennes", 22, 16, Dell, false, true),
                s("parasol", "rennes", 19, 4, Ibm, false, true),
                s("paranoia", "rennes", 8, 20, Ibm, false, false),
                // lyon (5 clusters)
                s("sagittaire", "lyon", 79, 4, Bull, false, false),
                s("taurus", "lyon", 12, 12, Bull, false, false),
                s("orion", "lyon", 4, 12, Bull, false, false),
                s("nova", "lyon", 15, 16, Bull, false, true),
                s("hercule", "lyon", 4, 12, Bull, false, false),
                // grenoble (3 clusters)
                s("edel", "grenoble", 65, 8, Hp, true, false),
                s("genepi", "grenoble", 32, 8, Hp, true, false),
                s("adonis", "grenoble", 10, 8, Hp, false, false),
                // lille (4 clusters)
                s("chetemi", "lille", 13, 20, Dell, false, true),
                s("chifflet", "lille", 8, 24, Dell, false, true),
                s("chinqchint", "lille", 31, 20, Ibm, false, false),
                s("chiclet", "lille", 15, 10, Dell, false, true),
                // luxembourg (2 clusters)
                s("granduc", "luxembourg", 20, 8, Hp, false, false),
                s("petitprince", "luxembourg", 14, 12, Hp, false, false),
                // nantes (2 clusters)
                s("econome", "nantes", 18, 16, Dell, false, true),
                s("ecotype", "nantes", 21, 20, Dell, false, true),
                // sophia (4 clusters)
                s("suno", "sophia", 44, 8, Dell, false, true),
                s("uvb", "sophia", 37, 8, Dell, false, true),
                s("helios", "sophia", 37, 4, Ibm, false, false),
                s("sphene", "sophia", 13, 12, Dell, false, true),
            ],
        }
    }

    /// A grid-of-grids testbed: `sites` sites of `clusters_per_site`
    /// clusters of `nodes_per_cluster` nodes each, pushing past the
    /// paper's 8 sites toward the hundreds-of-sites regime the sharded
    /// engine targets. Names are collision-free by construction — site
    /// `g{s}`, cluster `g{s}c{c}`, node `g{s}c{c}-{n}` — and the hardware
    /// mix cycles through the paper's heterogeneity axes (vendor, core
    /// count, Infiniband, introspectable disks, one GPU cluster per site)
    /// so every test family finds targets at any scale.
    pub fn grid_of_grids(sites: u32, clusters_per_site: u32, nodes_per_cluster: u32) -> Self {
        TestbedBuilder {
            specs: grid_specs(sites, clusters_per_site, nodes_per_cluster),
        }
    }

    /// A small testbed (2 sites, 4 clusters, 14 nodes) for fast tests.
    pub fn small() -> Self {
        use Vendor::*;
        TestbedBuilder {
            specs: vec![
                ClusterSpec::new("alpha", "east", 4, 8, Dell, true, true),
                ClusterSpec::new("beta", "east", 4, 16, Dell, false, false),
                ClusterSpec::new("gamma", "west", 3, 4, Hp, false, true),
                ClusterSpec::new("delta", "west", 3, 12, Bull, false, false),
            ],
        }
    }

    /// The cluster specifications this builder will realize.
    pub fn specs(&self) -> &[ClusterSpec] {
        &self.specs
    }

    /// Generate the testbed.
    ///
    /// Panics when the specification overflows an id width: the arenas
    /// index by dense copy ids (`u16` clusters/sites/switches/PDUs, `u32`
    /// nodes), and a hundreds-of-sites generator must fail loudly here
    /// instead of wrapping two entities onto one aliased id.
    pub fn build(self) -> Testbed {
        assert!(
            self.specs.len() <= u16::MAX as usize,
            "{} clusters overflow the u16 cluster/switch/pdu id space",
            self.specs.len()
        );
        let total_nodes: u64 = self.specs.iter().map(|s| s.nodes as u64).sum();
        assert!(
            total_nodes <= u32::MAX as u64,
            "{total_nodes} nodes overflow the u32 node id space"
        );
        for spec in &self.specs {
            // Switch ports are u16 and reserve 8 uplink ports.
            assert!(
                spec.nodes <= (u16::MAX - 8) as u32,
                "cluster {} has {} nodes, more than one switch can port",
                spec.name,
                spec.nodes
            );
        }
        let mut sites: Vec<Site> = Vec::new();
        let mut clusters: Vec<Cluster> = Vec::new();
        let mut nodes: Vec<Node> = Vec::new();
        let mut topology = Topology::default();

        for spec in &self.specs {
            let site_id = match sites.iter().position(|s| s.name == spec.site) {
                Some(i) => SiteId(i as u16),
                None => {
                    let id = SiteId(sites.len() as u16);
                    sites.push(Site {
                        id,
                        name: spec.site.clone(),
                        clusters: Vec::new(),
                        switches: Vec::new(),
                    });
                    id
                }
            };
            let cluster_id = ClusterId(clusters.len() as u16);
            sites[site_id.index()].clusters.push(cluster_id);

            // One switch and one PDU per cluster.
            let switch_id = SwitchId(topology.switches.len() as u16);
            topology.switches.push(Switch {
                id: switch_id,
                site: site_id,
                name: format!("sw-{}", spec.name),
                ports: spec.nodes as u16 + 8,
            });
            sites[site_id.index()].switches.push(switch_id);
            let pdu_id = PduId(topology.pdus.len() as u16);
            topology.pdus.push(Pdu {
                id: pdu_id,
                site: site_id,
                ports: spec.nodes as u16,
            });

            let reference = reference_hardware(spec);
            let mut member_ids = Vec::with_capacity(spec.nodes as usize);
            for i in 0..spec.nodes {
                let node_id = NodeId(nodes.len() as u32);
                member_ids.push(node_id);
                topology.attach_node(
                    node_id,
                    PortRef {
                        switch: switch_id,
                        port: i as u16 + 1,
                    },
                );
                nodes.push(Node {
                    id: node_id,
                    name: format!("{}-{}", spec.name, i + 1),
                    cluster: cluster_id,
                    site: site_id,
                    hardware: reference.clone(),
                    condition: NodeCondition::default(),
                });
            }

            clusters.push(Cluster {
                id: cluster_id,
                name: spec.name.clone(),
                site: site_id,
                vendor: spec.vendor,
                nodes: member_ids,
                has_ib: spec.has_ib,
                disk_checkable: spec.disk_checkable,
                reference,
            });
        }

        // Full-mesh backbone between sites (SiteLinkPartition faults take
        // individual links down).
        topology.mesh_sites(sites.len());
        Testbed::from_parts(sites, clusters, nodes, topology)
    }
}

/// The cluster specifications behind [`TestbedBuilder::grid_of_grids`],
/// exposed so scenario presets can wrap them in a `TestbedScale::Custom`.
/// Deterministic in its arguments; no two clusters (and hence no two
/// nodes) anywhere in the grid share a name.
pub fn grid_specs(sites: u32, clusters_per_site: u32, nodes_per_cluster: u32) -> Vec<ClusterSpec> {
    const VENDORS: [Vendor; 4] = [Vendor::Dell, Vendor::Hp, Vendor::Bull, Vendor::Ibm];
    const CORES: [u32; 4] = [8, 16, 12, 20];
    let mut specs = Vec::with_capacity((sites as usize) * (clusters_per_site as usize));
    for s in 0..sites {
        let site = format!("g{s}");
        for c in 0..clusters_per_site {
            // Cycle the heterogeneity axes with per-site phase shifts so
            // neighbouring sites differ, like the real federation does.
            let k = (s + c) as usize;
            let mut spec = ClusterSpec::new(
                &format!("g{s}c{c}"),
                &site,
                nodes_per_cluster,
                CORES[k % CORES.len()],
                VENDORS[k % VENDORS.len()],
                k % 4 == 1,
                k.is_multiple_of(3),
            );
            if c == clusters_per_site - 1 && s.is_multiple_of(4) {
                spec = spec.with_gpu();
            }
            specs.push(spec);
        }
    }
    specs
}

/// The CPU generation for a given per-node core count (2017-era parts).
fn cpu_for_cores(cores: u32) -> CpuSpec {
    let (model, microarch, per_socket, mhz, driver) = match cores {
        4 => ("Intel Xeon 5110", "Woodcrest", 2, 1600, PstateDriver::AcpiCpufreq),
        8 => ("Intel Xeon L5420", "Harpertown", 4, 2500, PstateDriver::AcpiCpufreq),
        10 => ("Intel Xeon E5-2650L", "Sandy Bridge", 5, 1800, PstateDriver::IntelPstate),
        12 => ("Intel Xeon E5-2620", "Sandy Bridge", 6, 2000, PstateDriver::IntelPstate),
        16 => ("Intel Xeon E5-2630 v3", "Haswell", 8, 2400, PstateDriver::IntelPstate),
        20 => ("Intel Xeon E5-2660 v2", "Ivy Bridge", 10, 2200, PstateDriver::IntelPstate),
        24 => ("Intel Xeon E5-2680 v3", "Haswell", 12, 2500, PstateDriver::IntelPstate),
        _ => ("Intel Xeon E5-2600", "Generic", (cores / 2).max(1), 2100, PstateDriver::IntelPstate),
    };
    CpuSpec {
        model: model.into(),
        microarch: microarch.into(),
        sockets: 2,
        cores_per_socket: per_socket as u8,
        threads_per_core: 1,
        base_freq_mhz: mhz,
        turbo_enabled: false,
        ht_enabled: false,
        cstates_enabled: false,
        pstate_driver: driver,
    }
}

/// Memory bank for a given core count (grows with node generation).
fn mem_for_cores(cores: u32) -> MemSpec {
    match cores {
        4 => MemSpec::uniform(4, 2, 667),
        8 => MemSpec::uniform(4, 4, 800),
        10 => MemSpec::uniform(8, 8, 1600),
        12 => MemSpec::uniform(8, 4, 1333),
        16 => MemSpec::uniform(8, 16, 2133),
        20 => MemSpec::uniform(8, 16, 1866),
        24 => MemSpec::uniform(16, 16, 2133),
        _ => MemSpec::uniform(8, 8, 1600),
    }
}

/// BIOS version/settings per vendor.
fn bios_for(vendor: Vendor) -> BiosSpec {
    let version = match vendor {
        Vendor::Dell => "2.4.3",
        Vendor::Hp => "P68-2015.07.01",
        Vendor::Bull => "BIOSX07",
        Vendor::Ibm => "1.42",
    };
    let mut settings = BTreeMap::new();
    settings.insert("boot_mode".to_string(), "bios".to_string());
    settings.insert("power_profile".to_string(), "performance".to_string());
    BiosSpec {
        vendor,
        version: version.into(),
        settings,
    }
}

/// Full reference hardware for a cluster spec.
fn reference_hardware(spec: &ClusterSpec) -> NodeHardware {
    let cpu = cpu_for_cores(spec.cores_per_node);
    let old_generation = spec.cores_per_node <= 8;
    let disks = if spec.disk_checkable {
        vec![
            DiskSpec {
                device: "sda".into(),
                vendor: "Seagate".into(),
                model: "ST1000NM0033".into(),
                firmware: "GA67".into(),
                size_gb: 1000,
                kind: DiskKind::Hdd,
                write_cache: true,
                read_cache: true,
                interface: DiskInterface::Sata,
            },
            DiskSpec {
                device: "sdb".into(),
                vendor: "Seagate".into(),
                model: "ST1000NM0033".into(),
                firmware: "GA67".into(),
                size_gb: 1000,
                kind: DiskKind::Hdd,
                write_cache: true,
                read_cache: true,
                interface: DiskInterface::Sata,
            },
        ]
    } else if old_generation {
        vec![DiskSpec {
            device: "sda".into(),
            vendor: "Western Digital".into(),
            model: "WD2502ABYS".into(),
            firmware: "02.03B03".into(),
            size_gb: 250,
            kind: DiskKind::Hdd,
            write_cache: true,
            read_cache: true,
            interface: DiskInterface::Sata,
        }]
    } else {
        vec![DiskSpec {
            device: "sda".into(),
            vendor: "Intel".into(),
            model: "SSDSC2BX200G4R".into(),
            firmware: "G2010150".into(),
            size_gb: 200,
            kind: DiskKind::Ssd,
            write_cache: true,
            read_cache: true,
            interface: DiskInterface::Sata,
        }]
    };

    let nics = vec![
        NicSpec {
            name: "eth0".into(),
            model: if old_generation {
                "Broadcom NetXtreme II".into()
            } else {
                "Intel 82599ES".into()
            },
            driver: if old_generation { "bnx2".into() } else { "ixgbe".into() },
            firmware: if old_generation { "4.6.0".into() } else { "0x800003df".into() },
            rate_gbps: if old_generation { 1 } else { 10 },
            mounted: true,
        },
        NicSpec {
            name: "eth1".into(),
            model: "Intel I350".into(),
            driver: "igb".into(),
            firmware: "1.63".into(),
            rate_gbps: 1,
            mounted: false,
        },
    ];

    NodeHardware {
        cpu,
        mem: mem_for_cores(spec.cores_per_node),
        disks,
        nics,
        bios: bios_for(spec.vendor),
        ib: spec.has_ib.then(|| IbSpec {
            hca: "Mellanox ConnectX-3".into(),
            rate_gbps: if old_generation { 40 } else { 56 },
        }),
        gpu: spec.has_gpu.then(|| GpuSpec {
            model: "Nvidia Tesla K40".into(),
            count: 2,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_slide_6() {
        let tb = TestbedBuilder::paper_scale().build();
        assert_eq!(tb.sites().len(), 8, "8 sites");
        assert_eq!(tb.clusters().len(), 32, "32 clusters");
        assert_eq!(tb.nodes().len(), 894, "894 nodes");
        assert_eq!(tb.total_cores(), 8490, "8490 cores");
    }

    #[test]
    fn family_counts_match_design() {
        let tb = TestbedBuilder::paper_scale().build();
        let dell = tb
            .clusters()
            .iter()
            .filter(|c| c.vendor == Vendor::Dell)
            .count();
        let ib = tb.clusters().iter().filter(|c| c.has_ib).count();
        let disk = tb.clusters().iter().filter(|c| c.disk_checkable).count();
        assert_eq!(dell, 18, "dellbios targets");
        assert_eq!(ib, 6, "mpigraph targets");
        assert_eq!(disk, 14, "disk targets");
    }

    #[test]
    fn nodes_start_identical_to_reference() {
        let tb = TestbedBuilder::paper_scale().build();
        for c in tb.clusters() {
            for &n in &c.nodes {
                assert_eq!(tb.node(n).hardware, c.reference, "node {n} of {}", c.name);
            }
        }
    }

    #[test]
    fn node_names_and_sites_consistent() {
        let tb = TestbedBuilder::paper_scale().build();
        let graphene = tb.cluster_by_name("graphene").unwrap();
        assert_eq!(graphene.nodes.len(), 140);
        let first = tb.node(graphene.nodes[0]);
        assert_eq!(first.name, "graphene-1");
        assert_eq!(tb.site(first.site).name, "nancy");
        assert_eq!(first.cluster, graphene.id);
    }

    #[test]
    fn every_node_is_cabled_and_metered() {
        let tb = TestbedBuilder::paper_scale().build();
        for n in tb.nodes() {
            assert!(tb.topology().uplink.contains_key(&n.id));
            assert!(tb.topology().wiring_correct(n.id));
        }
        assert_eq!(tb.topology().switches.len(), 32);
    }

    #[test]
    fn gpu_cluster_exists() {
        let tb = TestbedBuilder::paper_scale().build();
        let grele = tb.cluster_by_name("grele").unwrap();
        assert!(grele.reference.gpu.is_some());
        let gpu_free = tb.cluster_by_name("grisou").unwrap();
        assert!(gpu_free.reference.gpu.is_none());
    }

    #[test]
    fn ib_clusters_have_hcas() {
        let tb = TestbedBuilder::paper_scale().build();
        for c in tb.clusters() {
            assert_eq!(c.reference.ib.is_some(), c.has_ib, "cluster {}", c.name);
        }
    }

    #[test]
    fn disk_checkable_clusters_have_two_hdds() {
        let tb = TestbedBuilder::paper_scale().build();
        for c in tb.clusters().iter().filter(|c| c.disk_checkable) {
            assert_eq!(c.reference.disks.len(), 2);
            assert!(c
                .reference
                .disks
                .iter()
                .all(|d| d.kind == DiskKind::Hdd && d.write_cache));
        }
    }

    #[test]
    fn small_testbed_shape() {
        let tb = TestbedBuilder::small().build();
        assert_eq!(tb.sites().len(), 2);
        assert_eq!(tb.clusters().len(), 4);
        assert_eq!(tb.nodes().len(), 14);
    }

    #[test]
    fn grid_of_grids_at_128_sites_validates() {
        // 128 sites × 4 clusters × 98 nodes = 50176 nodes: past the u16
        // temptation everywhere, and every structural invariant (unique
        // names, full site mesh, wattmeter bijection) must still hold.
        let tb = TestbedBuilder::grid_of_grids(128, 4, 98).build();
        assert_eq!(tb.sites().len(), 128);
        assert_eq!(tb.clusters().len(), 512);
        assert_eq!(tb.nodes().len(), 50176);
        crate::validate(&tb).expect("grid-of-grids must validate");
    }

    #[test]
    fn grid_names_never_collide() {
        // The naming scheme is collision-free by construction; keep it
        // honest at an awkward shape (site/cluster counts whose digit
        // concatenations could alias, e.g. g1c11 vs g11c1).
        let specs = grid_specs(12, 12, 1);
        let names: std::collections::HashSet<_> = specs.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), specs.len(), "duplicate cluster name");
        let tb = TestbedBuilder::from_specs(specs).build();
        crate::validate(&tb).expect("awkward grid must validate");
    }

    #[test]
    fn grid_covers_every_family_axis() {
        let tb = TestbedBuilder::grid_of_grids(16, 4, 2).build();
        assert!(tb.clusters().iter().any(|c| c.has_ib), "no IB targets");
        assert!(tb.clusters().iter().any(|c| c.disk_checkable), "no disk targets");
        assert!(
            tb.clusters().iter().any(|c| c.reference.gpu.is_some()),
            "no GPU targets"
        );
        assert!(
            tb.clusters().iter().any(|c| c.vendor == Vendor::Dell),
            "no dellbios targets"
        );
    }

    #[test]
    #[should_panic(expected = "overflow the u16 cluster")]
    fn cluster_id_width_is_guarded() {
        let specs = grid_specs(66000, 1, 1);
        TestbedBuilder::from_specs(specs).build();
    }

    #[test]
    #[should_panic(expected = "more than one switch can port")]
    fn switch_port_width_is_guarded() {
        let specs = grid_specs(1, 1, 70000);
        TestbedBuilder::from_specs(specs).build();
    }

    #[test]
    fn cluster_core_sums() {
        let tb = TestbedBuilder::paper_scale().build();
        let graphene = tb.cluster_by_name("graphene").unwrap();
        assert_eq!(graphene.cores_per_node(), 4);
        assert_eq!(graphene.total_cores(), 560);
    }
}

//! A node: actual hardware plus runtime condition.

use crate::hardware::NodeHardware;
use crate::ids::{ClusterId, NodeId, SiteId};
use serde::{Deserialize, Serialize};

/// Runtime condition of a node — everything that is *not* static hardware
/// description but affects how the node behaves under test. Faults mutate
/// this (and [`NodeHardware`]); repairs reset it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeCondition {
    /// Whether the node responds at all (false = dead hardware).
    pub alive: bool,
    /// Extra boot delay in seconds (kernel race condition bug, slide 22).
    pub boot_delay_s: f64,
    /// If set, mean time between spontaneous reboots, in hours
    /// (the decommissioned-cluster bug, slide 22).
    pub random_reboot_mtbf_h: Option<f64>,
    /// Whether the OFED/Infiniband stack randomly fails to start apps
    /// (slide 22's OFED bug).
    pub ofed_flaky: bool,
    /// Whether the serial console is unreachable.
    pub console_dead: bool,
    /// Number of DIMMs that have failed and are masked out by the BIOS.
    pub failed_dimms: u8,
    /// Whether the switch port refuses VLAN reconfiguration.
    pub vlan_port_stuck: bool,
    /// Name of the environment currently deployed, if any.
    pub deployed_env: Option<String>,
    /// Lifetime count of boots (for diagnostics).
    pub boots: u64,
    /// Lifetime count of deployments (for diagnostics).
    pub deployments: u64,
}

impl Default for NodeCondition {
    fn default() -> Self {
        NodeCondition {
            alive: true,
            boot_delay_s: 0.0,
            random_reboot_mtbf_h: None,
            ofed_flaky: false,
            console_dead: false,
            failed_dimms: 0,
            vlan_port_stuck: false,
            deployed_env: None,
            boots: 0,
            deployments: 0,
        }
    }
}

impl NodeCondition {
    /// Whether the node is in nominal condition (no active degradation).
    pub fn is_nominal(&self) -> bool {
        self.alive
            && self.boot_delay_s == 0.0
            && self.random_reboot_mtbf_h.is_none()
            && !self.ofed_flaky
            && !self.console_dead
            && self.failed_dimms == 0
            && !self.vlan_port_stuck
    }
}

/// One compute node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Dense identifier.
    pub id: NodeId,
    /// Host name, e.g. `"graphene-12"`.
    pub name: String,
    /// Owning cluster.
    pub cluster: ClusterId,
    /// Owning site.
    pub site: SiteId,
    /// Actual hardware state (faults mutate this).
    pub hardware: NodeHardware,
    /// Runtime condition.
    pub condition: NodeCondition,
}

impl Node {
    /// Usable memory in GiB after masking failed DIMMs.
    pub fn effective_memory_gb(&self) -> u32 {
        let failed = self.condition.failed_dimms as usize;
        self.hardware
            .mem
            .dimms
            .iter()
            .skip(failed)
            .map(|d| d.size_gb)
            .sum()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::hardware::*;
    use std::collections::BTreeMap;

    fn node() -> Node {
        Node {
            id: NodeId(0),
            name: "test-1".into(),
            cluster: ClusterId(0),
            site: SiteId(0),
            hardware: NodeHardware {
                cpu: CpuSpec {
                    model: "X".into(),
                    microarch: "Y".into(),
                    sockets: 2,
                    cores_per_socket: 4,
                    threads_per_core: 1,
                    base_freq_mhz: 2000,
                    turbo_enabled: false,
                    ht_enabled: false,
                    cstates_enabled: false,
                    pstate_driver: PstateDriver::AcpiCpufreq,
                },
                mem: MemSpec::uniform(4, 8, 1600),
                disks: vec![],
                nics: vec![],
                bios: BiosSpec {
                    vendor: Vendor::Hp,
                    version: "1.0".into(),
                    settings: BTreeMap::new(),
                },
                ib: None,
                gpu: None,
            },
            condition: NodeCondition::default(),
        }
    }

    #[test]
    fn default_condition_is_nominal() {
        assert!(NodeCondition::default().is_nominal());
    }

    #[test]
    fn degradations_break_nominal() {
        let mut c = NodeCondition::default();
        c.ofed_flaky = true;
        assert!(!c.is_nominal());
        let mut c = NodeCondition::default();
        c.boot_delay_s = 45.0;
        assert!(!c.is_nominal());
        let mut c = NodeCondition::default();
        c.alive = false;
        assert!(!c.is_nominal());
    }

    #[test]
    fn deployed_env_does_not_affect_nominal() {
        let mut c = NodeCondition::default();
        c.deployed_env = Some("debian9-min".into());
        c.boots = 12;
        assert!(c.is_nominal());
    }

    #[test]
    fn failed_dimms_shrink_memory() {
        let mut n = node();
        assert_eq!(n.effective_memory_gb(), 32);
        n.condition.failed_dimms = 1;
        assert_eq!(n.effective_memory_gb(), 24);
        n.condition.failed_dimms = 4;
        assert_eq!(n.effective_memory_gb(), 0);
        n.condition.failed_dimms = 9; // more than installed: saturates
        assert_eq!(n.effective_memory_gb(), 0);
    }
}

//! Structural validation of a testbed instance.
//!
//! The generator guarantees these invariants; fault application and repair
//! must preserve them. Campaign tests call [`validate`] after stress to
//! catch any mutation that corrupts the cross-references.

use crate::testbed::Testbed;

/// Check every structural invariant; returns the first violation found.
pub fn validate(tb: &Testbed) -> Result<(), String> {
    // Sites ↔ clusters cross-reference.
    for site in tb.sites() {
        for &cid in &site.clusters {
            let cluster = tb.cluster(cid);
            if cluster.site != site.id {
                return Err(format!(
                    "cluster {} listed under {} but points at {}",
                    cluster.name, site.name, cluster.site
                ));
            }
        }
    }
    for cluster in tb.clusters() {
        if !tb.site(cluster.site).clusters.contains(&cluster.id) {
            return Err(format!(
                "cluster {} missing from its site's list",
                cluster.name
            ));
        }
        // Clusters ↔ nodes cross-reference.
        for &nid in &cluster.nodes {
            let node = tb.node(nid);
            if node.cluster != cluster.id {
                return Err(format!(
                    "node {} listed in {} but points at {}",
                    node.name, cluster.name, node.cluster
                ));
            }
            if node.site != cluster.site {
                return Err(format!("node {} site disagrees with its cluster", node.name));
            }
        }
    }
    // Every node belongs to exactly one cluster.
    let mut seen = vec![false; tb.nodes().len()];
    for cluster in tb.clusters() {
        for &nid in &cluster.nodes {
            if seen[nid.index()] {
                return Err(format!("node {nid} appears in two clusters"));
            }
            seen[nid.index()] = true;
        }
    }
    if let Some(idx) = seen.iter().position(|s| !s) {
        return Err(format!("node index {idx} belongs to no cluster"));
    }
    // Topology covers every node; the wattmeter permutation is a bijection.
    let mut measured = std::collections::BTreeSet::new();
    for node in tb.nodes() {
        if !tb.topology().uplink.contains_key(&node.id) {
            return Err(format!("node {} has no switch port", node.name));
        }
        if !measured.insert(tb.topology().measured_node(node.id)) {
            return Err(format!(
                "two wattmeters measure the same node near {}",
                node.name
            ));
        }
    }
    // Names are unique.
    let mut names = std::collections::BTreeSet::new();
    for node in tb.nodes() {
        if !names.insert(node.name.as_str()) {
            return Err(format!("duplicate node name {}", node.name));
        }
    }
    // Backbone mesh: exactly one link per unordered site pair, endpoints
    // ordered and in range.
    let n_sites = tb.sites().len();
    let links = &tb.topology().site_links;
    let expected = n_sites * n_sites.saturating_sub(1) / 2;
    if links.len() != expected {
        return Err(format!(
            "site mesh has {} links, expected {expected} for {n_sites} sites",
            links.len()
        ));
    }
    let mut pairs = std::collections::BTreeSet::new();
    for l in links {
        if l.a >= l.b {
            return Err(format!("site link {}~{} endpoints out of order", l.a, l.b));
        }
        if l.b.index() >= n_sites {
            return Err(format!("site link {}~{} beyond the site range", l.a, l.b));
        }
        if !pairs.insert((l.a, l.b)) {
            return Err(format!("duplicate site link {}~{}", l.a, l.b));
        }
    }
    // Site-scoped state vectors track the site arena.
    for site in tb.sites() {
        let _ = tb.site_powered(site.id);
        let _ = tb.clock_skew_of(site.id);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultTarget};
    use crate::gen::TestbedBuilder;
    use ttt_sim::SimTime;

    #[test]
    fn generated_testbeds_validate() {
        validate(&TestbedBuilder::small().build()).unwrap();
        validate(&TestbedBuilder::paper_scale().build()).unwrap();
    }

    #[test]
    fn faults_preserve_invariants() {
        let mut tb = TestbedBuilder::small().build();
        let c = &tb.clusters()[0];
        let (a, b) = (c.nodes[0], c.nodes[1]);
        let mut applied = Vec::new();
        for (kind, target) in [
            (FaultKind::CpuCStatesDrift, FaultTarget::Node(a)),
            (FaultKind::CablingSwap, FaultTarget::NodePair(a, b)),
            (FaultKind::NodeDead, FaultTarget::Node(b)),
            (FaultKind::DimmFailure, FaultTarget::Node(a)),
        ] {
            applied.push(tb.apply_fault(kind, target, SimTime::ZERO).unwrap());
        }
        validate(&tb).unwrap();
        for f in applied {
            tb.repair(f.id);
        }
        validate(&tb).unwrap();
    }

    #[test]
    fn cabling_swap_keeps_wattmeters_bijective() {
        let mut tb = TestbedBuilder::paper_scale().build();
        // Swap several disjoint pairs; the measured-node map must remain a
        // permutation for validation to pass.
        let nodes = tb.cluster_by_name("grisou").unwrap().nodes.clone();
        for pair in nodes.chunks(2).take(5) {
            if let [x, y] = pair {
                tb.apply_fault(
                    FaultKind::CablingSwap,
                    FaultTarget::NodePair(*x, *y),
                    SimTime::ZERO,
                )
                .unwrap();
            }
        }
        validate(&tb).unwrap();
    }
}

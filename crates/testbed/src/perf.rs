//! Performance model of the simulated hardware.
//!
//! The paper's central warning is that *subtle performance deviations*
//! (slide 13: "5% decrease in performance → wrong results → wrong
//! conclusions") arise from configuration drift. This module maps the
//! hardware description onto synthetic-but-plausible performance figures so
//! that drifted nodes measurably differ from nominal ones, in the right
//! direction and by roughly the right magnitude:
//!
//! * disabled disk write cache halves sequential write bandwidth;
//! * a known-bad disk firmware costs ~18 %;
//! * enabled deep C-states cost ~3 % on latency-sensitive compute;
//! * turbo boost adds ~8 %;
//! * disabled hyperthreading removes the SMT throughput bonus (~15 %).

use crate::hardware::{CpuSpec, DiskKind, DiskSpec, IbSpec, NicSpec};
use crate::node::Node;

/// Sequential-write bandwidth factor for a known-bad firmware revision.
///
/// The generator hands out "good" firmware on reference hardware; the
/// `DiskFirmwareDrift` fault downgrades to one of these revisions.
pub fn firmware_perf_factor(firmware: &str) -> f64 {
    match firmware {
        // Known-bad revisions (the paper's "different disk performance due
        // to different disk firmware versions" bug).
        "GA63" => 0.82,
        "3B07" => 0.85,
        "D1S4" => 0.78,
        _ => 1.0,
    }
}

/// Nominal sequential-write bandwidth of a disk, MB/s.
pub fn disk_seq_write_mbps(disk: &DiskSpec) -> f64 {
    let base = match disk.kind {
        DiskKind::Hdd => 140.0,
        DiskKind::Ssd => 460.0,
    };
    let cache = if disk.write_cache { 1.0 } else { 0.45 };
    base * cache * firmware_perf_factor(&disk.firmware)
}

/// Nominal sequential-read bandwidth of a disk, MB/s.
pub fn disk_seq_read_mbps(disk: &DiskSpec) -> f64 {
    let base = match disk.kind {
        DiskKind::Hdd => 155.0,
        DiskKind::Ssd => 520.0,
    };
    let cache = if disk.read_cache { 1.0 } else { 0.8 };
    base * cache * firmware_perf_factor(&disk.firmware)
}

/// Relative compute throughput of a CPU configuration (arbitrary units:
/// cores × GHz × setting factors). Comparing two nodes' values yields the
/// performance ratio an experimenter would observe.
pub fn cpu_throughput(cpu: &CpuSpec) -> f64 {
    let ghz = cpu.base_freq_mhz as f64 / 1000.0;
    let turbo = if cpu.turbo_enabled { 1.08 } else { 1.0 };
    let cstates = if cpu.cstates_enabled { 0.97 } else { 1.0 };
    let smt = if cpu.ht_enabled { 1.15 } else { 1.0 };
    cpu.total_cores() as f64 * ghz * turbo * cstates * smt
}

/// Electrical power draw of a node in watts at a given load in `[0, 1]`.
///
/// Used by the monitoring model: induced load must show up on the node's
/// wattmeter (unless the wiring is wrong).
pub fn power_draw_w(node: &Node, load: f64) -> f64 {
    let load = load.clamp(0.0, 1.0);
    let cores = node.hardware.cores() as f64;
    let mut idle = 55.0 + 2.2 * cores;
    if !node.hardware.cpu.cstates_enabled {
        // Without deep sleep states the idle floor is noticeably higher.
        idle += 18.0;
    }
    let dynamic = (4.8 + if node.hardware.cpu.turbo_enabled { 0.9 } else { 0.0 }) * cores * load;
    if node.condition.alive {
        idle + dynamic
    } else {
        0.0
    }
}

/// Effective Ethernet bandwidth of a NIC, Gbps.
pub fn net_bw_gbps(nic: &NicSpec) -> f64 {
    nic.rate_gbps as f64 * 0.94 // protocol overhead
}

/// Effective Infiniband bandwidth, Gbps.
pub fn ib_bw_gbps(ib: &IbSpec) -> f64 {
    ib.rate_gbps as f64 * 0.88
}

/// Nominal boot duration in seconds, before noise and fault-induced delays.
pub const BASE_BOOT_SECS: f64 = 110.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::*;
    use crate::ids::*;
    use crate::node::{Node, NodeCondition};
    use std::collections::BTreeMap;

    fn disk(kind: DiskKind, write_cache: bool, firmware: &str) -> DiskSpec {
        DiskSpec {
            device: "sda".into(),
            vendor: "Seagate".into(),
            model: "ST1000".into(),
            firmware: firmware.into(),
            size_gb: 1000,
            kind,
            write_cache,
            read_cache: true,
            interface: DiskInterface::Sata,
        }
    }

    #[test]
    fn write_cache_halves_bandwidth() {
        let on = disk_seq_write_mbps(&disk(DiskKind::Hdd, true, "GA67"));
        let off = disk_seq_write_mbps(&disk(DiskKind::Hdd, false, "GA67"));
        assert!((off / on - 0.45).abs() < 1e-9);
    }

    #[test]
    fn bad_firmware_costs_bandwidth() {
        let good = disk_seq_write_mbps(&disk(DiskKind::Hdd, true, "GA67"));
        let bad = disk_seq_write_mbps(&disk(DiskKind::Hdd, true, "GA63"));
        assert!((bad / good - 0.82).abs() < 1e-9);
        // Read path is affected too.
        let rg = disk_seq_read_mbps(&disk(DiskKind::Hdd, true, "GA67"));
        let rb = disk_seq_read_mbps(&disk(DiskKind::Hdd, true, "GA63"));
        assert!(rb < rg);
    }

    #[test]
    fn ssd_faster_than_hdd() {
        assert!(
            disk_seq_write_mbps(&disk(DiskKind::Ssd, true, "X"))
                > disk_seq_write_mbps(&disk(DiskKind::Hdd, true, "X"))
        );
    }

    fn cpu() -> CpuSpec {
        CpuSpec {
            model: "m".into(),
            microarch: "a".into(),
            sockets: 2,
            cores_per_socket: 8,
            threads_per_core: 1,
            base_freq_mhz: 2400,
            turbo_enabled: false,
            ht_enabled: false,
            cstates_enabled: false,
            pstate_driver: PstateDriver::IntelPstate,
        }
    }

    #[test]
    fn cstates_cost_three_percent() {
        let nominal = cpu_throughput(&cpu());
        let mut drifted = cpu();
        drifted.cstates_enabled = true;
        let ratio = cpu_throughput(&drifted) / nominal;
        assert!((ratio - 0.97).abs() < 1e-9);
    }

    #[test]
    fn turbo_adds_eight_percent() {
        let mut t = cpu();
        t.turbo_enabled = true;
        assert!((cpu_throughput(&t) / cpu_throughput(&cpu()) - 1.08).abs() < 1e-9);
    }

    fn node() -> Node {
        Node {
            id: NodeId(0),
            name: "n-1".into(),
            cluster: ClusterId(0),
            site: SiteId(0),
            hardware: NodeHardware {
                cpu: cpu(),
                mem: MemSpec::uniform(8, 16, 2133),
                disks: vec![],
                nics: vec![],
                bios: BiosSpec {
                    vendor: Vendor::Dell,
                    version: "2.0".into(),
                    settings: BTreeMap::new(),
                },
                ib: None,
                gpu: None,
            },
            condition: NodeCondition::default(),
        }
    }

    #[test]
    fn power_rises_with_load() {
        let n = node();
        let idle = power_draw_w(&n, 0.0);
        let full = power_draw_w(&n, 1.0);
        assert!(idle > 0.0);
        assert!(full > idle + 50.0);
        // Load clamps.
        assert_eq!(power_draw_w(&n, 2.0), full);
    }

    #[test]
    fn cstates_lower_idle_power() {
        let hi = node(); // cstates disabled in fixture
        let mut lo = node();
        lo.hardware.cpu.cstates_enabled = true;
        assert!(power_draw_w(&lo, 0.0) < power_draw_w(&hi, 0.0));
    }

    #[test]
    fn dead_node_draws_nothing() {
        let mut n = node();
        n.condition.alive = false;
        assert_eq!(power_draw_w(&n, 0.5), 0.0);
    }

    #[test]
    fn network_rates() {
        let nic = NicSpec {
            name: "eth0".into(),
            model: "X".into(),
            driver: "ixgbe".into(),
            firmware: "1".into(),
            rate_gbps: 10,
            mounted: true,
        };
        assert!((net_bw_gbps(&nic) - 9.4).abs() < 1e-9);
        let ib = IbSpec {
            hca: "ConnectX-3".into(),
            rate_gbps: 56,
        };
        assert!(ib_bw_gbps(&ib) > 45.0);
    }
}

//! # ttt-testbed — the simulated testbed substrate
//!
//! A stateful model of a Grid'5000-class testbed: 8 sites, 32 clusters,
//! 894 nodes, 8490 cores in the paper-scale configuration, plus the network
//! and power-monitoring topology, per-site infrastructure services, and a
//! fault-injection engine reproducing the paper's bug catalogue (slides 13
//! and 22): CPU setting drift, disk firmware/cache divergence, cabling
//! mistakes, flaky services, random reboots, and more.
//!
//! The framework under test only ever observes the testbed through probes
//! and service calls, so this substrate exercises exactly the code paths
//! the real framework exercises on real hardware (see DESIGN.md §2).

#![forbid(unsafe_code)]

pub mod cluster;
pub mod fault;
pub mod gen;
pub mod hardware;
pub mod ids;
pub mod link;
pub mod node;
pub mod perf;
pub mod process;
pub mod services;
pub mod site;
pub mod testbed;
pub mod topology;
pub mod validate;

pub use cluster::Cluster;
pub use fault::{Fault, FaultId, FaultInjector, FaultKind, FaultTarget, InjectorConfig};
pub use gen::TestbedBuilder;
pub use hardware::{
    BiosSpec, CpuSpec, DiskInterface, DiskKind, DiskSpec, GpuSpec, IbSpec, MemSpec, NicSpec,
    NodeHardware, Vendor,
};
pub use ids::{ClusterId, NodeId, PduId, SiteId, SwitchId};
pub use link::{DistanceTiered, Ideal, LinkModel, LinkModelSpec, Uniform};
pub use node::{Node, NodeCondition};
pub use process::{ProcessEntry, ProcessRegistry, ServiceId};
pub use services::{Service, ServiceError, ServiceKind};
pub use site::Site;
pub use testbed::{CallFailure, RpcTraceEntry, Testbed, CONTROL_SITE, SERVICE_RESTART_WINDOW};
pub use validate::validate;

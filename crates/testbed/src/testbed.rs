//! The testbed aggregate: arenas of sites/clusters/nodes, topology,
//! services, and the fault application/repair logic.

use crate::cluster::Cluster;
use crate::fault::{Fault, FaultId, FaultKind, FaultTarget};
use crate::hardware::NodeHardware;
use crate::ids::{ClusterId, NodeId, SiteId};
use crate::node::Node;
use crate::services::{Service, ServiceHealth, ServiceKind};
use crate::site::Site;
use crate::topology::Topology;
use ttt_sim::SimTime;

/// The whole simulated testbed.
///
/// All entity collections are dense arenas indexed by the typed ids, so
/// lookups are O(1) and iteration is cache-friendly (the campaign
/// orchestrator touches every node once per tick).
#[derive(Debug, Clone)]
pub struct Testbed {
    sites: Vec<Site>,
    clusters: Vec<Cluster>,
    nodes: Vec<Node>,
    topology: Topology,
    /// `services[site][i]` for `i` indexing [`ServiceKind::ALL`].
    services: Vec<Vec<Service>>,
    active: Vec<Fault>,
    next_fault_id: u64,
    /// Nodes whose `alive` flag flipped since the last
    /// [`Testbed::take_alive_dirty`] — the OAR server diffs against this
    /// instead of rescanning every node each pass.
    alive_dirty: Vec<NodeId>,
}

impl Testbed {
    /// Assemble a testbed from parts (used by the generator).
    pub(crate) fn from_parts(
        sites: Vec<Site>,
        clusters: Vec<Cluster>,
        nodes: Vec<Node>,
        topology: Topology,
    ) -> Self {
        let services = sites
            .iter()
            .map(|_| ServiceKind::ALL.iter().map(|&k| Service::healthy(k)).collect())
            .collect();
        Testbed {
            sites,
            clusters,
            nodes,
            topology,
            services,
            active: Vec::new(),
            next_fault_id: 0,
            alive_dirty: Vec::new(),
        }
    }

    /// Nodes whose alive state changed since the last drain, without
    /// consuming them.
    pub fn alive_dirty(&self) -> &[NodeId] {
        &self.alive_dirty
    }

    /// Drain the set of nodes whose alive state changed since the previous
    /// drain. Consumers (the OAR server sync) process exactly these instead
    /// of scanning all nodes.
    pub fn take_alive_dirty(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.alive_dirty)
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One site by id.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// One cluster by id.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// One node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node access (deployment engine, examples).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Look a cluster up by name.
    pub fn cluster_by_name(&self, name: &str) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.name == name)
    }

    /// Look a node up by host name.
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Look a site up by name.
    pub fn site_by_name(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// Total core count across the testbed.
    pub fn total_cores(&self) -> u64 {
        self.clusters.iter().map(|c| c.total_cores() as u64).sum()
    }

    /// The network/power topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (KaVLAN, examples).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// One site service.
    pub fn service(&self, site: SiteId, kind: ServiceKind) -> &Service {
        let idx = ServiceKind::ALL.iter().position(|&k| k == kind).unwrap();
        &self.services[site.index()][idx]
    }

    /// Mutable service access.
    pub fn service_mut(&mut self, site: SiteId, kind: ServiceKind) -> &mut Service {
        let idx = ServiceKind::ALL.iter().position(|&k| k == kind).unwrap();
        &mut self.services[site.index()][idx]
    }

    /// Currently active (unrepaired) faults.
    pub fn active_faults(&self) -> &[Fault] {
        &self.active
    }

    /// The active fault with the given id, if any.
    pub fn fault(&self, id: FaultId) -> Option<&Fault> {
        self.active.iter().find(|f| f.id == id)
    }

    /// Active faults touching `node`.
    pub fn faults_on_node(&self, node: NodeId) -> Vec<&Fault> {
        self.active
            .iter()
            .filter(|f| match f.target {
                FaultTarget::Node(n) => n == node,
                FaultTarget::NodePair(a, b) => a == node || b == node,
                FaultTarget::Service(..) => false,
            })
            .collect()
    }

    /// Apply a fault. Returns `None` when it would be a no-op (target
    /// already carries an equivalent fault), in which case nothing changes.
    pub fn apply_fault(
        &mut self,
        kind: FaultKind,
        target: FaultTarget,
        at: SimTime,
    ) -> Option<Fault> {
        if !self.apply_effect(kind, target) {
            return None;
        }
        let fault = Fault {
            id: FaultId(self.next_fault_id),
            kind,
            target,
            injected_at: at,
        };
        self.next_fault_id += 1;
        self.active.push(fault.clone());
        Some(fault)
    }

    /// Repair (revert) an active fault. Returns false if the id is unknown.
    pub fn repair(&mut self, id: FaultId) -> bool {
        let Some(pos) = self.active.iter().position(|f| f.id == id) else {
            return false;
        };
        let fault = self.active.remove(pos);
        self.revert_effect(&fault);
        true
    }

    /// Reference hardware for `node` (its cluster template).
    pub fn reference_of(&self, node: NodeId) -> &NodeHardware {
        &self.clusters[self.nodes[node.index()].cluster.index()].reference
    }

    /// Mutate the testbed according to `kind`; returns false for no-ops.
    fn apply_effect(&mut self, kind: FaultKind, target: FaultTarget) -> bool {
        match (kind, target) {
            (FaultKind::DiskWriteCacheDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).disks.first().map(|d| d.write_cache);
                let node = &mut self.nodes[n.index()];
                match (node.hardware.disks.first_mut(), r) {
                    (Some(d), Some(r)) if d.write_cache == r => {
                        d.write_cache = !r;
                        true
                    }
                    _ => false,
                }
            }
            (FaultKind::DiskFirmwareDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).disks.first().map(|d| d.firmware.clone());
                let node = &mut self.nodes[n.index()];
                match (node.hardware.disks.first_mut(), r) {
                    (Some(d), Some(r)) if d.firmware == r => {
                        d.firmware = "GA63".to_string();
                        true
                    }
                    _ => false,
                }
            }
            (FaultKind::CpuCStatesDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).cpu.cstates_enabled;
                let cpu = &mut self.nodes[n.index()].hardware.cpu;
                if cpu.cstates_enabled == r {
                    cpu.cstates_enabled = !r;
                    true
                } else {
                    false
                }
            }
            (FaultKind::HyperthreadingDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).cpu.ht_enabled;
                let cpu = &mut self.nodes[n.index()].hardware.cpu;
                if cpu.ht_enabled == r {
                    cpu.ht_enabled = !r;
                    cpu.threads_per_core = if cpu.ht_enabled { 2 } else { 1 };
                    true
                } else {
                    false
                }
            }
            (FaultKind::TurboDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).cpu.turbo_enabled;
                let cpu = &mut self.nodes[n.index()].hardware.cpu;
                if cpu.turbo_enabled == r {
                    cpu.turbo_enabled = !r;
                    true
                } else {
                    false
                }
            }
            (FaultKind::BiosVersionDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).bios.version.clone();
                let bios = &mut self.nodes[n.index()].hardware.bios;
                if bios.version == r {
                    bios.version = format!("{r}-beta");
                    true
                } else {
                    false
                }
            }
            (FaultKind::DimmFailure, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if (node.condition.failed_dimms as usize) < node.hardware.mem.dimms.len() {
                    node.condition.failed_dimms += 1;
                    true
                } else {
                    false
                }
            }
            (FaultKind::NicDowngrade, FaultTarget::Node(n)) => {
                let r = self
                    .reference_of(n)
                    .primary_nic()
                    .map(|nic| nic.rate_gbps);
                let node = &mut self.nodes[n.index()];
                match (
                    node.hardware.nics.iter_mut().find(|nic| nic.mounted),
                    r,
                ) {
                    (Some(nic), Some(r)) if nic.rate_gbps == r && r > 1 => {
                        nic.rate_gbps = 1;
                        true
                    }
                    _ => false,
                }
            }
            (FaultKind::CablingSwap, FaultTarget::NodePair(a, b)) => {
                if a == b
                    || !self.topology.wiring_correct(a)
                    || !self.topology.wiring_correct(b)
                {
                    false
                } else {
                    self.topology.swap_wattmeters(a, b);
                    true
                }
            }
            (FaultKind::KernelBootRace, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if node.condition.boot_delay_s == 0.0 {
                    // Deterministic per-node delay in [40, 90) s.
                    node.condition.boot_delay_s = 40.0 + (n.0 % 50) as f64;
                    true
                } else {
                    false
                }
            }
            (FaultKind::RandomReboots, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if node.condition.random_reboot_mtbf_h.is_none() {
                    // The paper's spontaneously-rebooting cluster was bad
                    // enough to be decommissioned: MTBF of two hours.
                    node.condition.random_reboot_mtbf_h = Some(2.0);
                    true
                } else {
                    false
                }
            }
            (FaultKind::OfedFlaky, FaultTarget::Node(n)) => {
                let has_ib = self.nodes[n.index()].hardware.ib.is_some();
                let node = &mut self.nodes[n.index()];
                if has_ib && !node.condition.ofed_flaky {
                    node.condition.ofed_flaky = true;
                    true
                } else {
                    false
                }
            }
            (FaultKind::ConsoleDead, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if !node.condition.console_dead {
                    node.condition.console_dead = true;
                    true
                } else {
                    false
                }
            }
            (FaultKind::VlanPortStuck, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if !node.condition.vlan_port_stuck {
                    node.condition.vlan_port_stuck = true;
                    true
                } else {
                    false
                }
            }
            (FaultKind::ServiceFlaky, FaultTarget::Service(site, svc)) => {
                let s = self.service_mut(site, svc);
                if matches!(s.health, ServiceHealth::Healthy) {
                    s.health = ServiceHealth::Flaky { fail_prob: 0.25 };
                    true
                } else {
                    false
                }
            }
            (FaultKind::ServiceDown, FaultTarget::Service(site, svc)) => {
                let s = self.service_mut(site, svc);
                if !matches!(s.health, ServiceHealth::Down) {
                    s.health = ServiceHealth::Down;
                    true
                } else {
                    false
                }
            }
            (FaultKind::NodeDead, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if node.condition.alive {
                    node.condition.alive = false;
                    self.alive_dirty.push(n);
                    true
                } else {
                    false
                }
            }
            // Kind/target mismatch: reject rather than panic, the injector
            // never produces these but library users could.
            _ => false,
        }
    }

    fn revert_effect(&mut self, fault: &Fault) {
        match (fault.kind, fault.target) {
            (FaultKind::CablingSwap, FaultTarget::NodePair(a, b)) => {
                self.topology.swap_wattmeters(a, b);
            }
            (FaultKind::ServiceFlaky | FaultKind::ServiceDown, FaultTarget::Service(site, svc)) => {
                self.service_mut(site, svc).health = ServiceHealth::Healthy;
            }
            (kind, FaultTarget::Node(n)) => {
                let reference = self.reference_of(n).clone();
                let node = &mut self.nodes[n.index()];
                match kind {
                    FaultKind::DiskWriteCacheDrift => {
                        if let (Some(d), Some(r)) =
                            (node.hardware.disks.first_mut(), reference.disks.first())
                        {
                            d.write_cache = r.write_cache;
                        }
                    }
                    FaultKind::DiskFirmwareDrift => {
                        if let (Some(d), Some(r)) =
                            (node.hardware.disks.first_mut(), reference.disks.first())
                        {
                            d.firmware = r.firmware.clone();
                        }
                    }
                    FaultKind::CpuCStatesDrift => {
                        node.hardware.cpu.cstates_enabled = reference.cpu.cstates_enabled;
                    }
                    FaultKind::HyperthreadingDrift => {
                        node.hardware.cpu.ht_enabled = reference.cpu.ht_enabled;
                        node.hardware.cpu.threads_per_core = reference.cpu.threads_per_core;
                    }
                    FaultKind::TurboDrift => {
                        node.hardware.cpu.turbo_enabled = reference.cpu.turbo_enabled;
                    }
                    FaultKind::BiosVersionDrift => {
                        node.hardware.bios.version = reference.bios.version.clone();
                    }
                    FaultKind::DimmFailure => {
                        node.condition.failed_dimms = node.condition.failed_dimms.saturating_sub(1);
                    }
                    FaultKind::NicDowngrade => {
                        if let (Some(nic), Some(r)) = (
                            node.hardware.nics.iter_mut().find(|nic| nic.mounted),
                            reference.primary_nic(),
                        ) {
                            nic.rate_gbps = r.rate_gbps;
                        }
                    }
                    FaultKind::KernelBootRace => node.condition.boot_delay_s = 0.0,
                    FaultKind::RandomReboots => node.condition.random_reboot_mtbf_h = None,
                    FaultKind::OfedFlaky => node.condition.ofed_flaky = false,
                    FaultKind::ConsoleDead => node.condition.console_dead = false,
                    FaultKind::VlanPortStuck => node.condition.vlan_port_stuck = false,
                    FaultKind::NodeDead => {
                        node.condition.alive = true;
                        self.alive_dirty.push(n);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TestbedBuilder;

    fn tb() -> Testbed {
        TestbedBuilder::small().build()
    }

    #[test]
    fn apply_then_repair_restores_reference() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        let before = tb.node(n).hardware.clone();
        let f = tb
            .apply_fault(FaultKind::CpuCStatesDrift, FaultTarget::Node(n), SimTime::ZERO)
            .expect("fault applies");
        assert_ne!(tb.node(n).hardware, before);
        assert_eq!(tb.active_faults().len(), 1);
        assert!(tb.repair(f.id));
        assert_eq!(tb.node(n).hardware, before);
        assert!(tb.active_faults().is_empty());
    }

    #[test]
    fn alive_dirty_tracks_flips_only() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        // Config drift does not flip alive: no dirty entry.
        tb.apply_fault(FaultKind::TurboDrift, FaultTarget::Node(n), SimTime::ZERO)
            .unwrap();
        assert!(tb.alive_dirty().is_empty());
        // Death marks the node dirty once.
        let f = tb
            .apply_fault(FaultKind::NodeDead, FaultTarget::Node(n), SimTime::ZERO)
            .unwrap();
        assert_eq!(tb.alive_dirty(), &[n]);
        // A second death on the same node is a no-op: still one entry.
        assert!(tb
            .apply_fault(FaultKind::NodeDead, FaultTarget::Node(n), SimTime::ZERO)
            .is_none());
        assert_eq!(tb.take_alive_dirty(), vec![n]);
        assert!(tb.alive_dirty().is_empty());
        // Repair flips alive back: dirty again.
        assert!(tb.repair(f.id));
        assert_eq!(tb.take_alive_dirty(), vec![n]);
    }

    #[test]
    fn double_application_is_noop() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        assert!(tb
            .apply_fault(FaultKind::TurboDrift, FaultTarget::Node(n), SimTime::ZERO)
            .is_some());
        assert!(tb
            .apply_fault(FaultKind::TurboDrift, FaultTarget::Node(n), SimTime::ZERO)
            .is_none());
        assert_eq!(tb.active_faults().len(), 1);
    }

    #[test]
    fn repair_unknown_id_is_false() {
        let mut tb = tb();
        assert!(!tb.repair(FaultId(99)));
    }

    #[test]
    fn cabling_swap_and_repair() {
        let mut tb = tb();
        let c = &tb.clusters()[0];
        let (a, b) = (c.nodes[0], c.nodes[1]);
        let f = tb
            .apply_fault(
                FaultKind::CablingSwap,
                FaultTarget::NodePair(a, b),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(tb.topology().measured_node(a), b);
        assert!(tb.repair(f.id));
        assert_eq!(tb.topology().measured_node(a), a);
        // Self-swap is rejected.
        assert!(tb
            .apply_fault(
                FaultKind::CablingSwap,
                FaultTarget::NodePair(a, a),
                SimTime::ZERO
            )
            .is_none());
    }

    #[test]
    fn service_faults_change_health() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        let f = tb
            .apply_fault(
                FaultKind::ServiceDown,
                FaultTarget::Service(site, ServiceKind::ApiFrontend),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(matches!(
            tb.service(site, ServiceKind::ApiFrontend).health,
            ServiceHealth::Down
        ));
        tb.repair(f.id);
        assert!(matches!(
            tb.service(site, ServiceKind::ApiFrontend).health,
            ServiceHealth::Healthy
        ));
    }

    #[test]
    fn ofed_requires_infiniband() {
        let mut tb = tb();
        let ib_node = tb.clusters().iter().find(|c| c.has_ib).unwrap().nodes[0];
        let non_ib_node = tb.clusters().iter().find(|c| !c.has_ib).unwrap().nodes[0];
        let ok = tb.apply_fault(FaultKind::OfedFlaky, FaultTarget::Node(ib_node), SimTime::ZERO);
        let no = tb.apply_fault(
            FaultKind::OfedFlaky,
            FaultTarget::Node(non_ib_node),
            SimTime::ZERO,
        );
        assert!(ok.is_some());
        assert!(no.is_none());
    }

    #[test]
    fn kind_target_mismatch_rejected() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        // Node kind with service target and vice versa must be no-ops.
        assert!(tb
            .apply_fault(
                FaultKind::ServiceDown,
                FaultTarget::Node(n),
                SimTime::ZERO
            )
            .is_none());
        let site = tb.sites()[0].id;
        assert!(tb
            .apply_fault(
                FaultKind::TurboDrift,
                FaultTarget::Service(site, ServiceKind::OarServer),
                SimTime::ZERO
            )
            .is_none());
    }

    #[test]
    fn faults_on_node_filters() {
        let mut tb = tb();
        let c = &tb.clusters()[0];
        let (a, b) = (c.nodes[0], c.nodes[1]);
        tb.apply_fault(FaultKind::ConsoleDead, FaultTarget::Node(a), SimTime::ZERO);
        tb.apply_fault(
            FaultKind::CablingSwap,
            FaultTarget::NodePair(a, b),
            SimTime::ZERO,
        );
        tb.apply_fault(FaultKind::TurboDrift, FaultTarget::Node(b), SimTime::ZERO);
        assert_eq!(tb.faults_on_node(a).len(), 2);
        assert_eq!(tb.faults_on_node(b).len(), 2);
    }

    #[test]
    fn dimm_failures_accumulate_and_repair() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        let full = tb.node(n).effective_memory_gb();
        let f1 = tb
            .apply_fault(FaultKind::DimmFailure, FaultTarget::Node(n), SimTime::ZERO)
            .unwrap();
        let _f2 = tb
            .apply_fault(FaultKind::DimmFailure, FaultTarget::Node(n), SimTime::ZERO)
            .unwrap();
        assert!(tb.node(n).effective_memory_gb() < full);
        assert_eq!(tb.node(n).condition.failed_dimms, 2);
        tb.repair(f1.id);
        assert_eq!(tb.node(n).condition.failed_dimms, 1);
    }
}

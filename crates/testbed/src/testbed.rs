//! The testbed aggregate: arenas of sites/clusters/nodes, topology,
//! services, and the fault application/repair logic.

use crate::cluster::Cluster;
use crate::fault::{Fault, FaultId, FaultKind, FaultTarget};
use crate::hardware::NodeHardware;
use crate::ids::{ClusterId, NodeId, SiteId};
use crate::link::{LinkModel, LinkModelSpec};
use crate::node::Node;
use crate::process::ProcessRegistry;
use crate::services::{Service, ServiceError, ServiceHealth, ServiceKind};
use crate::site::Site;
use crate::topology::Topology;
use rand::Rng;
use std::fmt;
use ttt_sim::rpc::{Buggify, LinkQuality, RpcError};
use ttt_sim::{SimDuration, SimTime};

/// How long a `ServiceRestart` fault keeps its process down before the
/// campaign driver auto-repairs it (the restart completing *is* the repair).
pub const SERVICE_RESTART_WINDOW: SimDuration = SimDuration::from_mins(30);

/// The site the control plane (campaign driver, CI, deployment tooling)
/// calls services *from*: the first site of the testbed. Link models price
/// enveloped calls along the `CONTROL_SITE → target` backbone path.
pub const CONTROL_SITE: SiteId = SiteId(0);

/// One recorded envelope outcome, drained by a recording campaign into its
/// run event log each step.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcTraceEntry {
    /// Target site of the call.
    pub site: SiteId,
    /// Service kind called.
    pub kind: ServiceKind,
    /// `"ok"` or the failure rendered.
    pub outcome: String,
}

/// How an enveloped service call fails: either the RPC layer never reached
/// the process (refused/dropped), or the process answered and its service
/// logic failed (down/flaky health, injected chaos).
#[derive(Debug, Clone, PartialEq)]
pub enum CallFailure {
    /// The envelope failed before the service logic ran.
    Rpc(RpcError),
    /// The service logic itself failed.
    Service(ServiceError),
}

impl fmt::Display for CallFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallFailure::Rpc(e) => write!(f, "{e}"),
            CallFailure::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CallFailure {}

/// The whole simulated testbed.
///
/// All entity collections are dense arenas indexed by the typed ids, so
/// lookups are O(1) and iteration is cache-friendly (the campaign
/// orchestrator touches every node once per tick).
#[derive(Debug, Clone)]
pub struct Testbed {
    sites: Vec<Site>,
    clusters: Vec<Cluster>,
    nodes: Vec<Node>,
    topology: Topology,
    /// `services[site][i]` for `i` indexing [`ServiceKind::ALL`].
    services: Vec<Vec<Service>>,
    active: Vec<Fault>,
    next_fault_id: u64,
    /// Nodes whose `alive` flag flipped since the last
    /// [`Testbed::take_alive_dirty`] — the OAR server diffs against this
    /// instead of rescanning every node each pass.
    alive_dirty: Vec<NodeId>,
    /// `site_power[site]` — false while a `SitePowerOutage` is active.
    site_power: Vec<bool>,
    /// `clock_skew_s[site]` — seconds of NTP drift (0.0 = in sync).
    clock_skew_s: Vec<f64>,
    /// `injected[k]` for `k` indexing [`FaultKind::ALL`] — every fault ever
    /// successfully applied, repaired or not. The coverage-guided fuzzer's
    /// behavioral signature reads this ledger (injected × detected kinds).
    injected: [u64; FaultKind::ALL.len()],
    /// The simulated service processes (one per site × [`ServiceKind`]),
    /// each pinned to a host node with killable liveness.
    processes: ProcessRegistry,
    /// `rpc_degrade[site]` — link quality applied to every enveloped call
    /// into that site while an `RpcDegraded` fault is active.
    rpc_degrade: Vec<Option<LinkQuality>>,
    /// The buggify switch for IO-shaped callsites, off unless the campaign
    /// config arms it.
    buggify: Buggify,
    /// The backbone link model pricing inter-site calls and placement
    /// probes. [`LinkModelSpec::Ideal`] (the default) is draw-free and
    /// byte-identical to the pre-link-model behavior.
    link_model: LinkModelSpec,
    /// Envelope outcomes recorded since the last drain, `None` unless a
    /// recording campaign enabled the trace (zero cost when off).
    rpc_trace: Option<Vec<RpcTraceEntry>>,
}

impl Testbed {
    /// Assemble a testbed from parts (used by the generator).
    pub(crate) fn from_parts(
        sites: Vec<Site>,
        clusters: Vec<Cluster>,
        nodes: Vec<Node>,
        topology: Topology,
    ) -> Self {
        let services = sites
            .iter()
            .map(|_| ServiceKind::ALL.iter().map(|&k| Service::healthy(k)).collect())
            .collect();
        let n_sites = sites.len();
        // Each service process is pinned to its site's first node — pure
        // identity metadata (host death is a separate fault axis).
        let processes = ProcessRegistry::new(n_sites, |s| {
            nodes.iter().find(|n| n.site.index() == s).map(|n| n.id)
        });
        Testbed {
            site_power: vec![true; n_sites],
            clock_skew_s: vec![0.0; n_sites],
            injected: [0; FaultKind::ALL.len()],
            processes,
            rpc_degrade: vec![None; n_sites],
            buggify: Buggify::off(),
            link_model: LinkModelSpec::Ideal,
            rpc_trace: None,
            sites,
            clusters,
            nodes,
            topology,
            services,
            active: Vec::new(),
            next_fault_id: 0,
            alive_dirty: Vec::new(),
        }
    }

    /// Nodes whose alive state changed since the last drain, without
    /// consuming them.
    pub fn alive_dirty(&self) -> &[NodeId] {
        &self.alive_dirty
    }

    /// Drain the set of nodes whose alive state changed since the previous
    /// drain. Consumers (the OAR server sync) process exactly these instead
    /// of scanning all nodes.
    pub fn take_alive_dirty(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.alive_dirty)
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One site by id.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// One cluster by id.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// One node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node access (deployment engine, examples).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Effective reachability of a node: its hardware is alive *and* its
    /// site has power. Schedulers and status checks observe this, not the
    /// raw hardware flag — a powered-off site looks exactly like a rack of
    /// dead machines from the outside.
    pub fn node_alive(&self, id: NodeId) -> bool {
        let node = &self.nodes[id.index()];
        node.condition.alive && self.site_power[node.site.index()]
    }

    /// Whether a site currently has power.
    pub fn site_powered(&self, site: SiteId) -> bool {
        self.site_power[site.index()]
    }

    /// A site's current clock skew against the federation reference, in
    /// seconds (0.0 = synchronized).
    pub fn clock_skew_of(&self, site: SiteId) -> f64 {
        self.clock_skew_s[site.index()]
    }

    /// Look a cluster up by name.
    pub fn cluster_by_name(&self, name: &str) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.name == name)
    }

    /// Look a node up by host name.
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Look a site up by name.
    pub fn site_by_name(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// Total core count across the testbed.
    pub fn total_cores(&self) -> u64 {
        self.clusters.iter().map(|c| c.total_cores() as u64).sum()
    }

    /// The network/power topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (KaVLAN, examples).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// One site service.
    pub fn service(&self, site: SiteId, kind: ServiceKind) -> &Service {
        let idx = ServiceKind::ALL.iter().position(|&k| k == kind).unwrap();
        &self.services[site.index()][idx]
    }

    /// Mutable service access.
    pub fn service_mut(&mut self, site: SiteId, kind: ServiceKind) -> &mut Service {
        let idx = ServiceKind::ALL.iter().position(|&k| k == kind).unwrap();
        &mut self.services[site.index()][idx]
    }

    /// The service-process registry (read-only view).
    pub fn processes(&self) -> &ProcessRegistry {
        &self.processes
    }

    /// Whether the process serving `kind` at `site` is listening.
    pub fn process_up(&self, site: SiteId, kind: ServiceKind) -> bool {
        self.processes.is_up(site, kind)
    }

    /// Link quality currently degrading calls into `site`, if any.
    pub fn rpc_quality(&self, site: SiteId) -> Option<LinkQuality> {
        self.rpc_degrade[site.index()]
    }

    /// Arm (or disarm) the buggify switch. The campaign driver sets this
    /// once from its config before the first step.
    pub fn set_buggify(&mut self, buggify: Buggify) {
        self.buggify = buggify;
    }

    /// The buggify switch, for subsystems that inject at their own
    /// callsites (CI assignment, deployment rounds).
    pub fn buggify(&self) -> Buggify {
        self.buggify
    }

    /// Install the backbone link model. The campaign driver sets this once
    /// from its config before the first step; the default
    /// [`LinkModelSpec::Ideal`] never draws and never adds latency, so
    /// unconfigured campaigns are byte-identical to pre-link-model ones.
    pub fn set_link_model(&mut self, model: LinkModelSpec) {
        self.link_model = model;
    }

    /// The installed backbone link model.
    pub fn link_model(&self) -> LinkModelSpec {
        self.link_model
    }

    /// Enable (or disable) the envelope-outcome trace a recording campaign
    /// drains into its run event log. Off by default and free when off.
    pub fn set_rpc_trace(&mut self, on: bool) {
        self.rpc_trace = if on { Some(Vec::new()) } else { None };
    }

    /// Drain the envelope outcomes recorded since the last drain.
    pub fn take_rpc_trace(&mut self) -> Vec<RpcTraceEntry> {
        match self.rpc_trace.as_mut() {
            Some(trace) => std::mem::take(trace),
            None => Vec::new(),
        }
    }

    /// Effective quality of the backbone path `from → to`: the link
    /// model's figure for the pair, `None` for same-site hops or under the
    /// ideal model. Partition state is separate — see
    /// [`Testbed::backbone_reachable`].
    pub fn path_quality(&self, from: SiteId, to: SiteId) -> Option<LinkQuality> {
        self.link_model.quality(from, to)
    }

    /// Whether the backbone path between two sites is usable for placement
    /// under the installed link model. With the ideal model the backbone
    /// is free and placement ignores it (the historical behavior); with a
    /// real model armed, a partitioned pair — or one whose modelled loss
    /// makes the link mostly dead — is unreachable, so partitions become a
    /// matter of degree the federation actually feels.
    pub fn backbone_reachable(&self, a: SiteId, b: SiteId) -> bool {
        if self.link_model.is_ideal() || a == b {
            return true;
        }
        if !self.topology.sites_connected(a, b) {
            return false;
        }
        self.link_model
            .quality(a, b)
            .is_none_or(|q| q.loss_prob < 0.5)
    }

    /// Route one service call through the RPC envelope: liveness first
    /// (a dead process refuses — no draw), then the backbone link model on
    /// the control-plane path (partitioned pair drops with no draw; a
    /// lossy model costs one draw only when its `loss_prob > 0`), then
    /// link loss on a degraded site (one draw), then the buggify hook (one
    /// draw when armed), then the service's own health logic. `Ok` carries
    /// the extra envelope latency in seconds (0.0 on a healthy link).
    ///
    /// Draw counts depend only on fault state, the link model, and the
    /// buggify arm — all identical across engines for the same scenario —
    /// so the stream stays engine-equivalent. The ideal model (the
    /// default) adds no draws and no latency anywhere.
    pub fn service_call<R: Rng>(
        &mut self,
        site: SiteId,
        kind: ServiceKind,
        rng: &mut R,
    ) -> Result<f64, CallFailure> {
        let result = self.service_call_inner(site, kind, rng);
        if let Some(trace) = self.rpc_trace.as_mut() {
            trace.push(RpcTraceEntry {
                site,
                kind,
                outcome: match &result {
                    Ok(_) => "ok".to_string(),
                    Err(e) => e.to_string(),
                },
            });
        }
        result
    }

    fn service_call_inner<R: Rng>(
        &mut self,
        site: SiteId,
        kind: ServiceKind,
        rng: &mut R,
    ) -> Result<f64, CallFailure> {
        if !self.processes.is_up(site, kind) {
            self.processes.note_lost_call(site, kind);
            return Err(CallFailure::Rpc(RpcError::Refused));
        }
        let mut latency = 0.0;
        if let Some(q) = self.link_model.quality(CONTROL_SITE, site) {
            // A non-ideal model makes partitions absolute: the modelled
            // path crosses the backbone, and a downed link drops every
            // call outright (no draw — the decision is topological).
            if !self.topology.sites_connected(CONTROL_SITE, site) {
                self.processes.note_lost_call(site, kind);
                return Err(CallFailure::Rpc(RpcError::Dropped));
            }
            latency += q.latency_s;
            if q.loss_prob > 0.0 && rng.gen_bool(q.loss_prob.clamp(0.0, 1.0)) {
                self.processes.note_lost_call(site, kind);
                return Err(CallFailure::Rpc(RpcError::Dropped));
            }
        }
        if let Some(q) = self.rpc_degrade[site.index()] {
            latency += q.latency_s;
            if rng.gen_bool(q.loss_prob.clamp(0.0, 1.0)) {
                self.processes.note_lost_call(site, kind);
                return Err(CallFailure::Rpc(RpcError::Dropped));
            }
        }
        if self.buggify.fire("testbed-service-call", rng) {
            // Injected chaos surfaces as a transient service error so it
            // blends into flaky noise rather than fabricating a crash or
            // degraded-link signature.
            return Err(CallFailure::Service(ServiceError::Transient(format!(
                "buggify: {kind} call perturbed"
            ))));
        }
        self.service_mut(site, kind)
            .call(rng)
            .map(|()| latency)
            .map_err(CallFailure::Service)
    }

    /// The earliest scheduled process-restart instant — a campaign wake
    /// term (`ServiceRestart` downtime windows end on their own).
    pub fn next_service_restart(&self) -> Option<SimTime> {
        self.processes.next_restart()
    }

    /// Active `ServiceRestart` faults whose downtime window has elapsed by
    /// `now`, in fault-id order. The campaign driver repairs exactly these
    /// each step (the restart completing *is* the repair).
    pub fn due_service_restarts(&self, now: SimTime) -> Vec<FaultId> {
        self.active
            .iter()
            .filter(|f| f.kind == FaultKind::ServiceRestart)
            .filter(|f| match f.target {
                FaultTarget::Service(site, svc) => self
                    .processes
                    .entry(site, svc)
                    .state
                    .restart_at()
                    .is_some_and(|at| at <= now),
                _ => false,
            })
            .map(|f| f.id)
            .collect()
    }

    /// Currently active (unrepaired) faults.
    pub fn active_faults(&self) -> &[Fault] {
        &self.active
    }

    /// How many faults of each kind were ever applied (repairs do not
    /// decrement), `(kind, count)` in [`FaultKind::ALL`] order, zero
    /// entries skipped.
    pub fn injection_counts(&self) -> Vec<(FaultKind, u64)> {
        FaultKind::ALL
            .iter()
            .zip(self.injected)
            .filter(|&(_, n)| n > 0)
            .map(|(&k, n)| (k, n))
            .collect()
    }

    /// The active fault with the given id, if any.
    pub fn fault(&self, id: FaultId) -> Option<&Fault> {
        self.active.iter().find(|f| f.id == id)
    }

    /// Active faults touching `node` (site-wide faults touch every node of
    /// their site).
    pub fn faults_on_node(&self, node: NodeId) -> Vec<&Fault> {
        let site = self.nodes[node.index()].site;
        self.active
            .iter()
            .filter(|f| match f.target {
                FaultTarget::Node(n) => n == node,
                FaultTarget::NodePair(a, b) => a == node || b == node,
                FaultTarget::Service(..) => false,
                FaultTarget::Site(s) => s == site,
                FaultTarget::SiteLink(..) => false,
            })
            .collect()
    }

    /// Apply a fault. Returns `None` when it would be a no-op (target
    /// already carries an equivalent fault), in which case nothing changes.
    pub fn apply_fault(
        &mut self,
        kind: FaultKind,
        target: FaultTarget,
        at: SimTime,
    ) -> Option<Fault> {
        // Canonical endpoint order, so the signature of a partition between
        // two sites is unique regardless of how the injector drew the pair.
        let target = match target {
            FaultTarget::SiteLink(a, b) if a > b => FaultTarget::SiteLink(b, a),
            other => other,
        };
        if !self.apply_effect(kind, target, at) {
            return None;
        }
        let fault = Fault {
            id: FaultId(self.next_fault_id),
            kind,
            target,
            injected_at: at,
        };
        self.next_fault_id += 1;
        self.injected[kind as usize] += 1;
        self.active.push(fault.clone());
        Some(fault)
    }

    /// Repair (revert) an active fault. Returns false if the id is unknown.
    pub fn repair(&mut self, id: FaultId) -> bool {
        let Some(pos) = self.active.iter().position(|f| f.id == id) else {
            return false;
        };
        let fault = self.active.remove(pos);
        self.revert_effect(&fault);
        true
    }

    /// Reference hardware for `node` (its cluster template).
    pub fn reference_of(&self, node: NodeId) -> &NodeHardware {
        &self.clusters[self.nodes[node.index()].cluster.index()].reference
    }

    /// Mutate the testbed according to `kind`; returns false for no-ops.
    /// `at` is the injection instant (only the restart window reads it).
    fn apply_effect(&mut self, kind: FaultKind, target: FaultTarget, at: SimTime) -> bool {
        match (kind, target) {
            (FaultKind::DiskWriteCacheDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).disks.first().map(|d| d.write_cache);
                let node = &mut self.nodes[n.index()];
                match (node.hardware.disks.first_mut(), r) {
                    (Some(d), Some(r)) if d.write_cache == r => {
                        d.write_cache = !r;
                        true
                    }
                    _ => false,
                }
            }
            (FaultKind::DiskFirmwareDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).disks.first().map(|d| d.firmware.clone());
                let node = &mut self.nodes[n.index()];
                match (node.hardware.disks.first_mut(), r) {
                    (Some(d), Some(r)) if d.firmware == r => {
                        d.firmware = "GA63".to_string();
                        true
                    }
                    _ => false,
                }
            }
            (FaultKind::CpuCStatesDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).cpu.cstates_enabled;
                let cpu = &mut self.nodes[n.index()].hardware.cpu;
                if cpu.cstates_enabled == r {
                    cpu.cstates_enabled = !r;
                    true
                } else {
                    false
                }
            }
            (FaultKind::HyperthreadingDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).cpu.ht_enabled;
                let cpu = &mut self.nodes[n.index()].hardware.cpu;
                if cpu.ht_enabled == r {
                    cpu.ht_enabled = !r;
                    cpu.threads_per_core = if cpu.ht_enabled { 2 } else { 1 };
                    true
                } else {
                    false
                }
            }
            (FaultKind::TurboDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).cpu.turbo_enabled;
                let cpu = &mut self.nodes[n.index()].hardware.cpu;
                if cpu.turbo_enabled == r {
                    cpu.turbo_enabled = !r;
                    true
                } else {
                    false
                }
            }
            (FaultKind::BiosVersionDrift, FaultTarget::Node(n)) => {
                let r = self.reference_of(n).bios.version.clone();
                let bios = &mut self.nodes[n.index()].hardware.bios;
                if bios.version == r {
                    bios.version = format!("{r}-beta");
                    true
                } else {
                    false
                }
            }
            (FaultKind::DimmFailure, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if (node.condition.failed_dimms as usize) < node.hardware.mem.dimms.len() {
                    node.condition.failed_dimms += 1;
                    true
                } else {
                    false
                }
            }
            (FaultKind::NicDowngrade, FaultTarget::Node(n)) => {
                let r = self
                    .reference_of(n)
                    .primary_nic()
                    .map(|nic| nic.rate_gbps);
                let node = &mut self.nodes[n.index()];
                match (
                    node.hardware.nics.iter_mut().find(|nic| nic.mounted),
                    r,
                ) {
                    (Some(nic), Some(r)) if nic.rate_gbps == r && r > 1 => {
                        nic.rate_gbps = 1;
                        true
                    }
                    _ => false,
                }
            }
            (FaultKind::CablingSwap, FaultTarget::NodePair(a, b)) => {
                if a == b
                    || !self.topology.wiring_correct(a)
                    || !self.topology.wiring_correct(b)
                {
                    false
                } else {
                    self.topology.swap_wattmeters(a, b);
                    true
                }
            }
            (FaultKind::KernelBootRace, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if node.condition.boot_delay_s == 0.0 {
                    // Deterministic per-node delay in [40, 90) s.
                    node.condition.boot_delay_s = 40.0 + (n.0 % 50) as f64;
                    true
                } else {
                    false
                }
            }
            (FaultKind::RandomReboots, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if node.condition.random_reboot_mtbf_h.is_none() {
                    // The paper's spontaneously-rebooting cluster was bad
                    // enough to be decommissioned: MTBF of two hours.
                    node.condition.random_reboot_mtbf_h = Some(2.0);
                    true
                } else {
                    false
                }
            }
            (FaultKind::OfedFlaky, FaultTarget::Node(n)) => {
                let has_ib = self.nodes[n.index()].hardware.ib.is_some();
                let node = &mut self.nodes[n.index()];
                if has_ib && !node.condition.ofed_flaky {
                    node.condition.ofed_flaky = true;
                    true
                } else {
                    false
                }
            }
            (FaultKind::ConsoleDead, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if !node.condition.console_dead {
                    node.condition.console_dead = true;
                    true
                } else {
                    false
                }
            }
            (FaultKind::VlanPortStuck, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if !node.condition.vlan_port_stuck {
                    node.condition.vlan_port_stuck = true;
                    true
                } else {
                    false
                }
            }
            (FaultKind::ServiceFlaky, FaultTarget::Service(site, svc)) => {
                let s = self.service_mut(site, svc);
                if matches!(s.health, ServiceHealth::Healthy) {
                    s.health = ServiceHealth::Flaky { fail_prob: 0.25 };
                    true
                } else {
                    false
                }
            }
            (FaultKind::ServiceDown, FaultTarget::Service(site, svc)) => {
                let s = self.service_mut(site, svc);
                if !matches!(s.health, ServiceHealth::Down) {
                    s.health = ServiceHealth::Down;
                    true
                } else {
                    false
                }
            }
            (FaultKind::ServiceCrash, FaultTarget::Service(site, svc)) => {
                site.index() < self.sites.len() && self.processes.crash(site, svc)
            }
            (FaultKind::ServiceRestart, FaultTarget::Service(site, svc)) => {
                site.index() < self.sites.len()
                    && self
                        .processes
                        .schedule_restart(site, svc, at + SERVICE_RESTART_WINDOW)
            }
            (FaultKind::RpcDegraded, FaultTarget::Site(s)) => {
                if s.index() >= self.sites.len() || self.rpc_degrade[s.index()].is_some() {
                    return false;
                }
                self.rpc_degrade[s.index()] = Some(LinkQuality::degraded());
                true
            }
            (FaultKind::NodeDead, FaultTarget::Node(n)) => {
                let node = &mut self.nodes[n.index()];
                if node.condition.alive {
                    node.condition.alive = false;
                    self.alive_dirty.push(n);
                    true
                } else {
                    false
                }
            }
            (FaultKind::SitePowerOutage, FaultTarget::Site(s)) => {
                if s.index() >= self.sites.len() || !self.site_power[s.index()] {
                    return false;
                }
                self.site_power[s.index()] = false;
                // Only nodes whose effective reachability flipped (hardware
                // alive, now unreachable) need reconciling downstream.
                for node in &self.nodes {
                    if node.site == s && node.condition.alive {
                        self.alive_dirty.push(node.id);
                    }
                }
                true
            }
            (FaultKind::SiteLinkPartition, FaultTarget::SiteLink(a, b)) => {
                a != b
                    && self.topology.sites_connected(a, b)
                    && self.topology.set_site_link(a, b, false)
            }
            (FaultKind::ClockSkew, FaultTarget::Site(s)) => {
                if s.index() >= self.sites.len() || self.clock_skew_s[s.index()] != 0.0 {
                    return false;
                }
                // Deterministic per-site drift, well past any sane NTP
                // tolerance (mirrors the per-node boot-delay convention).
                self.clock_skew_s[s.index()] = 30.0 + (s.0 % 90) as f64;
                true
            }
            // Kind/target mismatch: reject rather than panic, the injector
            // never produces these but library users could.
            _ => false,
        }
    }

    fn revert_effect(&mut self, fault: &Fault) {
        match (fault.kind, fault.target) {
            (FaultKind::CablingSwap, FaultTarget::NodePair(a, b)) => {
                self.topology.swap_wattmeters(a, b);
            }
            (FaultKind::ServiceFlaky | FaultKind::ServiceDown, FaultTarget::Service(site, svc)) => {
                self.service_mut(site, svc).health = ServiceHealth::Healthy;
            }
            (
                FaultKind::ServiceCrash | FaultKind::ServiceRestart,
                FaultTarget::Service(site, svc),
            ) => {
                self.processes.mark_up(site, svc);
            }
            (FaultKind::RpcDegraded, FaultTarget::Site(s)) => {
                self.rpc_degrade[s.index()] = None;
            }
            (FaultKind::SitePowerOutage, FaultTarget::Site(s)) => {
                self.site_power[s.index()] = true;
                // Nodes whose hardware survived come back reachable; nodes
                // separately dead (NodeDead) flip nothing.
                for node in &self.nodes {
                    if node.site == s && node.condition.alive {
                        self.alive_dirty.push(node.id);
                    }
                }
            }
            (FaultKind::SiteLinkPartition, FaultTarget::SiteLink(a, b)) => {
                self.topology.set_site_link(a, b, true);
            }
            (FaultKind::ClockSkew, FaultTarget::Site(s)) => {
                self.clock_skew_s[s.index()] = 0.0;
            }
            (kind, FaultTarget::Node(n)) => {
                let reference = self.reference_of(n).clone();
                let node = &mut self.nodes[n.index()];
                match kind {
                    FaultKind::DiskWriteCacheDrift => {
                        if let (Some(d), Some(r)) =
                            (node.hardware.disks.first_mut(), reference.disks.first())
                        {
                            d.write_cache = r.write_cache;
                        }
                    }
                    FaultKind::DiskFirmwareDrift => {
                        if let (Some(d), Some(r)) =
                            (node.hardware.disks.first_mut(), reference.disks.first())
                        {
                            d.firmware = r.firmware.clone();
                        }
                    }
                    FaultKind::CpuCStatesDrift => {
                        node.hardware.cpu.cstates_enabled = reference.cpu.cstates_enabled;
                    }
                    FaultKind::HyperthreadingDrift => {
                        node.hardware.cpu.ht_enabled = reference.cpu.ht_enabled;
                        node.hardware.cpu.threads_per_core = reference.cpu.threads_per_core;
                    }
                    FaultKind::TurboDrift => {
                        node.hardware.cpu.turbo_enabled = reference.cpu.turbo_enabled;
                    }
                    FaultKind::BiosVersionDrift => {
                        node.hardware.bios.version = reference.bios.version.clone();
                    }
                    FaultKind::DimmFailure => {
                        node.condition.failed_dimms = node.condition.failed_dimms.saturating_sub(1);
                    }
                    FaultKind::NicDowngrade => {
                        if let (Some(nic), Some(r)) = (
                            node.hardware.nics.iter_mut().find(|nic| nic.mounted),
                            reference.primary_nic(),
                        ) {
                            nic.rate_gbps = r.rate_gbps;
                        }
                    }
                    FaultKind::KernelBootRace => node.condition.boot_delay_s = 0.0,
                    FaultKind::RandomReboots => node.condition.random_reboot_mtbf_h = None,
                    FaultKind::OfedFlaky => node.condition.ofed_flaky = false,
                    FaultKind::ConsoleDead => node.condition.console_dead = false,
                    FaultKind::VlanPortStuck => node.condition.vlan_port_stuck = false,
                    FaultKind::NodeDead => {
                        node.condition.alive = true;
                        self.alive_dirty.push(n);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TestbedBuilder;

    fn tb() -> Testbed {
        TestbedBuilder::small().build()
    }

    #[test]
    fn apply_then_repair_restores_reference() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        let before = tb.node(n).hardware.clone();
        let f = tb
            .apply_fault(FaultKind::CpuCStatesDrift, FaultTarget::Node(n), SimTime::ZERO)
            .expect("fault applies");
        assert_ne!(tb.node(n).hardware, before);
        assert_eq!(tb.active_faults().len(), 1);
        assert!(tb.repair(f.id));
        assert_eq!(tb.node(n).hardware, before);
        assert!(tb.active_faults().is_empty());
    }

    #[test]
    fn alive_dirty_tracks_flips_only() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        // Config drift does not flip alive: no dirty entry.
        tb.apply_fault(FaultKind::TurboDrift, FaultTarget::Node(n), SimTime::ZERO)
            .unwrap();
        assert!(tb.alive_dirty().is_empty());
        // Death marks the node dirty once.
        let f = tb
            .apply_fault(FaultKind::NodeDead, FaultTarget::Node(n), SimTime::ZERO)
            .unwrap();
        assert_eq!(tb.alive_dirty(), &[n]);
        // A second death on the same node is a no-op: still one entry.
        assert!(tb
            .apply_fault(FaultKind::NodeDead, FaultTarget::Node(n), SimTime::ZERO)
            .is_none());
        assert_eq!(tb.take_alive_dirty(), vec![n]);
        assert!(tb.alive_dirty().is_empty());
        // Repair flips alive back: dirty again.
        assert!(tb.repair(f.id));
        assert_eq!(tb.take_alive_dirty(), vec![n]);
    }

    #[test]
    fn double_application_is_noop() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        assert!(tb
            .apply_fault(FaultKind::TurboDrift, FaultTarget::Node(n), SimTime::ZERO)
            .is_some());
        assert!(tb
            .apply_fault(FaultKind::TurboDrift, FaultTarget::Node(n), SimTime::ZERO)
            .is_none());
        assert_eq!(tb.active_faults().len(), 1);
    }

    #[test]
    fn repair_unknown_id_is_false() {
        let mut tb = tb();
        assert!(!tb.repair(FaultId(99)));
    }

    #[test]
    fn cabling_swap_and_repair() {
        let mut tb = tb();
        let c = &tb.clusters()[0];
        let (a, b) = (c.nodes[0], c.nodes[1]);
        let f = tb
            .apply_fault(
                FaultKind::CablingSwap,
                FaultTarget::NodePair(a, b),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(tb.topology().measured_node(a), b);
        assert!(tb.repair(f.id));
        assert_eq!(tb.topology().measured_node(a), a);
        // Self-swap is rejected.
        assert!(tb
            .apply_fault(
                FaultKind::CablingSwap,
                FaultTarget::NodePair(a, a),
                SimTime::ZERO
            )
            .is_none());
    }

    #[test]
    fn service_faults_change_health() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        let f = tb
            .apply_fault(
                FaultKind::ServiceDown,
                FaultTarget::Service(site, ServiceKind::ApiFrontend),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(matches!(
            tb.service(site, ServiceKind::ApiFrontend).health,
            ServiceHealth::Down
        ));
        tb.repair(f.id);
        assert!(matches!(
            tb.service(site, ServiceKind::ApiFrontend).health,
            ServiceHealth::Healthy
        ));
    }

    #[test]
    fn service_crash_refuses_calls_until_repair() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        let mut rng = ttt_sim::rng::stream_rng(1, "svc-call");
        assert!(tb.service_call(site, ServiceKind::OarServer, &mut rng).is_ok());
        let f = tb
            .apply_fault(
                FaultKind::ServiceCrash,
                FaultTarget::Service(site, ServiceKind::OarServer),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(f.signature(), format!("service-crash@{site}/oar-server"));
        assert!(!tb.process_up(site, ServiceKind::OarServer));
        // The crash kills the process, not the service health, and not the
        // site: a crashed OAR process must never masquerade as a blackout.
        assert!(tb.site_powered(site));
        assert!(matches!(
            tb.service(site, ServiceKind::OarServer).health,
            ServiceHealth::Healthy
        ));
        assert_eq!(
            tb.service_call(site, ServiceKind::OarServer, &mut rng),
            Err(CallFailure::Rpc(RpcError::Refused))
        );
        // No scheduled restart: a crash waits for an operator repair.
        assert!(tb.next_service_restart().is_none());
        // Double crash is a no-op.
        assert!(tb
            .apply_fault(
                FaultKind::ServiceCrash,
                FaultTarget::Service(site, ServiceKind::OarServer),
                SimTime::ZERO,
            )
            .is_none());
        assert!(tb.repair(f.id));
        assert!(tb.process_up(site, ServiceKind::OarServer));
        assert!(tb.service_call(site, ServiceKind::OarServer, &mut rng).is_ok());
        let entry = tb.processes().entry(site, ServiceKind::OarServer);
        assert_eq!((entry.crashes, entry.restarts, entry.dropped_calls), (1, 1, 1));
    }

    #[test]
    fn service_restart_schedules_its_own_repair() {
        let mut tb = tb();
        let site = tb.sites()[1].id;
        let at = SimTime::from_hours(2);
        let f = tb
            .apply_fault(
                FaultKind::ServiceRestart,
                FaultTarget::Service(site, ServiceKind::KadeployServer),
                at,
            )
            .unwrap();
        assert!(!tb.process_up(site, ServiceKind::KadeployServer));
        let due_at = at + SERVICE_RESTART_WINDOW;
        assert_eq!(tb.next_service_restart(), Some(due_at));
        // Not due before the window elapses, due exactly at it.
        assert!(tb.due_service_restarts(at).is_empty());
        assert_eq!(tb.due_service_restarts(due_at), vec![f.id]);
        assert!(tb.repair(f.id));
        assert!(tb.process_up(site, ServiceKind::KadeployServer));
        assert!(tb.next_service_restart().is_none());
    }

    #[test]
    fn rpc_degraded_adds_latency_and_loss() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        let mut rng = ttt_sim::rng::stream_rng(3, "svc-call");
        let f = tb
            .apply_fault(FaultKind::RpcDegraded, FaultTarget::Site(site), SimTime::ZERO)
            .unwrap();
        assert_eq!(f.signature(), format!("rpc-degraded@{site}"));
        let q = tb.rpc_quality(site).unwrap();
        let mut dropped = 0u32;
        for _ in 0..400 {
            match tb.service_call(site, ServiceKind::ApiFrontend, &mut rng) {
                Ok(latency) => assert_eq!(latency, q.latency_s),
                Err(CallFailure::Rpc(RpcError::Dropped)) => dropped += 1,
                Err(other) => panic!("unexpected failure {other:?}"),
            }
        }
        let ratio = f64::from(dropped) / 400.0;
        assert!((0.15..0.35).contains(&ratio), "loss ratio {ratio}");
        assert_eq!(
            tb.processes().entry(site, ServiceKind::ApiFrontend).dropped_calls,
            u64::from(dropped)
        );
        // Double degradation is a no-op; repair restores a clean link.
        assert!(tb
            .apply_fault(FaultKind::RpcDegraded, FaultTarget::Site(site), SimTime::ZERO)
            .is_none());
        assert!(tb.repair(f.id));
        assert!(tb.rpc_quality(site).is_none());
        assert_eq!(tb.service_call(site, ServiceKind::ApiFrontend, &mut rng), Ok(0.0));
    }

    #[test]
    fn buggify_perturbs_calls_as_transient_noise() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        let mut rng = ttt_sim::rng::stream_rng(4, "svc-call");
        tb.set_buggify(ttt_sim::Buggify::new(4, 0.3));
        let mut transients = 0u32;
        for _ in 0..400 {
            match tb.service_call(site, ServiceKind::ConsoleServer, &mut rng) {
                Ok(_) => {}
                Err(CallFailure::Service(ServiceError::Transient(_))) => transients += 1,
                Err(other) => panic!("buggify must look transient, got {other:?}"),
            }
        }
        let ratio = f64::from(transients) / 400.0;
        assert!((0.2..0.4).contains(&ratio), "buggify ratio {ratio}");
    }

    #[test]
    fn ideal_link_model_is_byte_identical_to_no_model() {
        // Arming Ideal explicitly must not change latency, outcomes, or the
        // RNG stream relative to a testbed that never heard of link models.
        let mut plain = tb();
        let mut armed = tb();
        armed.set_link_model(LinkModelSpec::Ideal);
        let mut rng_a = ttt_sim::rng::stream_rng(7, "svc-call");
        let mut rng_b = ttt_sim::rng::stream_rng(7, "svc-call");
        for site in [plain.sites()[0].id, plain.sites()[1].id] {
            for _ in 0..50 {
                let a = plain.service_call(site, ServiceKind::ApiFrontend, &mut rng_a);
                let b = armed.service_call(site, ServiceKind::ApiFrontend, &mut rng_b);
                assert_eq!(a, b);
            }
        }
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn uniform_link_model_adds_latency_off_site_only() {
        let mut tb = tb();
        tb.set_link_model(LinkModelSpec::Uniform {
            latency_s: 0.02,
            loss_prob: 0.0,
        });
        let mut rng = ttt_sim::rng::stream_rng(9, "svc-call");
        // Control site itself stays free; a remote site pays the model's
        // latency. loss_prob == 0 means no loss draw either way.
        assert_eq!(
            tb.service_call(CONTROL_SITE, ServiceKind::ApiFrontend, &mut rng),
            Ok(0.0)
        );
        let remote = tb.sites()[1].id;
        assert_ne!(remote, CONTROL_SITE);
        assert_eq!(
            tb.service_call(remote, ServiceKind::ApiFrontend, &mut rng),
            Ok(0.02)
        );
    }

    #[test]
    fn lossy_link_model_drops_a_matching_share_of_calls() {
        let mut tb = tb();
        tb.set_link_model(LinkModelSpec::Uniform {
            latency_s: 0.01,
            loss_prob: 0.25,
        });
        let remote = tb.sites()[1].id;
        let mut rng = ttt_sim::rng::stream_rng(11, "svc-call");
        let mut dropped = 0u32;
        for _ in 0..400 {
            match tb.service_call(remote, ServiceKind::ApiFrontend, &mut rng) {
                Ok(latency) => assert_eq!(latency, 0.01),
                Err(CallFailure::Rpc(RpcError::Dropped)) => dropped += 1,
                Err(other) => panic!("unexpected failure {other:?}"),
            }
        }
        let ratio = f64::from(dropped) / 400.0;
        assert!((0.15..0.35).contains(&ratio), "loss ratio {ratio}");
    }

    #[test]
    fn partition_drops_calls_only_under_a_real_model() {
        let mut tb = tb();
        let remote = tb.sites()[1].id;
        let mut rng = ttt_sim::rng::stream_rng(13, "svc-call");
        tb.topology_mut().set_site_link(CONTROL_SITE, remote, false);
        // Ideal model: the backbone is free, partition is invisible to the
        // control-plane envelope (the historical behavior).
        assert!(tb.service_call(remote, ServiceKind::ApiFrontend, &mut rng).is_ok());
        assert!(tb.backbone_reachable(CONTROL_SITE, remote));
        // A real model makes the partition absolute — every call drops,
        // with no RNG draw.
        tb.set_link_model(LinkModelSpec::Uniform {
            latency_s: 0.005,
            loss_prob: 0.0,
        });
        let mut untouched = rng.clone();
        assert_eq!(
            tb.service_call(remote, ServiceKind::ApiFrontend, &mut rng),
            Err(CallFailure::Rpc(RpcError::Dropped))
        );
        assert_eq!(rng.gen::<u64>(), untouched.gen::<u64>(), "partition drop must not draw");
        assert!(!tb.backbone_reachable(CONTROL_SITE, remote));
        // Heal the link: calls flow again, with the model's latency.
        tb.topology_mut().set_site_link(CONTROL_SITE, remote, true);
        assert!(tb.backbone_reachable(CONTROL_SITE, remote));
    }

    #[test]
    fn backbone_reachability_degrades_with_loss() {
        let mut tb = tb();
        let (a, b) = (tb.sites()[0].id, tb.sites()[1].id);
        assert!(tb.backbone_reachable(a, b));
        tb.set_link_model(LinkModelSpec::Uniform {
            latency_s: 0.01,
            loss_prob: 0.6,
        });
        // A mostly-dead link is unusable for placement even though it is
        // not partitioned; same-site paths are always fine.
        assert!(!tb.backbone_reachable(a, b));
        assert!(tb.backbone_reachable(a, a));
        tb.set_link_model(LinkModelSpec::Uniform {
            latency_s: 0.01,
            loss_prob: 0.1,
        });
        assert!(tb.backbone_reachable(a, b));
    }

    #[test]
    fn rpc_trace_records_outcomes_when_enabled() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        let mut rng = ttt_sim::rng::stream_rng(17, "svc-call");
        // Off by default: nothing recorded, drains empty.
        tb.service_call(site, ServiceKind::ApiFrontend, &mut rng).unwrap();
        assert!(tb.take_rpc_trace().is_empty());
        tb.set_rpc_trace(true);
        tb.service_call(site, ServiceKind::ApiFrontend, &mut rng).unwrap();
        let f = tb
            .apply_fault(
                FaultKind::ServiceCrash,
                FaultTarget::Service(site, ServiceKind::OarServer),
                SimTime::ZERO,
            )
            .unwrap();
        tb.service_call(site, ServiceKind::OarServer, &mut rng).unwrap_err();
        let trace = tb.take_rpc_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].outcome, "ok");
        assert_eq!(trace[1].site, site);
        assert_eq!(trace[1].kind, ServiceKind::OarServer);
        assert!(trace[1].outcome.contains("refused"), "{}", trace[1].outcome);
        // Drain is destructive; disabling stops recording.
        assert!(tb.take_rpc_trace().is_empty());
        tb.set_rpc_trace(false);
        tb.repair(f.id);
        tb.service_call(site, ServiceKind::OarServer, &mut rng).unwrap();
        assert!(tb.take_rpc_trace().is_empty());
    }

    #[test]
    fn ofed_requires_infiniband() {
        let mut tb = tb();
        let ib_node = tb.clusters().iter().find(|c| c.has_ib).unwrap().nodes[0];
        let non_ib_node = tb.clusters().iter().find(|c| !c.has_ib).unwrap().nodes[0];
        let ok = tb.apply_fault(FaultKind::OfedFlaky, FaultTarget::Node(ib_node), SimTime::ZERO);
        let no = tb.apply_fault(
            FaultKind::OfedFlaky,
            FaultTarget::Node(non_ib_node),
            SimTime::ZERO,
        );
        assert!(ok.is_some());
        assert!(no.is_none());
    }

    #[test]
    fn kind_target_mismatch_rejected() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        // Node kind with service target and vice versa must be no-ops.
        assert!(tb
            .apply_fault(
                FaultKind::ServiceDown,
                FaultTarget::Node(n),
                SimTime::ZERO
            )
            .is_none());
        let site = tb.sites()[0].id;
        assert!(tb
            .apply_fault(
                FaultKind::TurboDrift,
                FaultTarget::Service(site, ServiceKind::OarServer),
                SimTime::ZERO
            )
            .is_none());
    }

    #[test]
    fn faults_on_node_filters() {
        let mut tb = tb();
        let c = &tb.clusters()[0];
        let (a, b) = (c.nodes[0], c.nodes[1]);
        tb.apply_fault(FaultKind::ConsoleDead, FaultTarget::Node(a), SimTime::ZERO);
        tb.apply_fault(
            FaultKind::CablingSwap,
            FaultTarget::NodePair(a, b),
            SimTime::ZERO,
        );
        tb.apply_fault(FaultKind::TurboDrift, FaultTarget::Node(b), SimTime::ZERO);
        assert_eq!(tb.faults_on_node(a).len(), 2);
        assert_eq!(tb.faults_on_node(b).len(), 2);
    }

    #[test]
    fn site_outage_kills_and_repair_restores_reachability() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        let site_nodes: Vec<_> = tb
            .nodes()
            .iter()
            .filter(|n| n.site == site)
            .map(|n| n.id)
            .collect();
        let other: Vec<_> = tb
            .nodes()
            .iter()
            .filter(|n| n.site != site)
            .map(|n| n.id)
            .collect();
        let f = tb
            .apply_fault(FaultKind::SitePowerOutage, FaultTarget::Site(site), SimTime::ZERO)
            .unwrap();
        assert_eq!(f.signature(), format!("site-power-outage@{site}"));
        assert!(!tb.site_powered(site));
        for &n in &site_nodes {
            assert!(!tb.node_alive(n), "{n} should be unreachable");
            // Hardware itself is fine — only the power is gone.
            assert!(tb.node(n).condition.alive);
        }
        for &n in &other {
            assert!(tb.node_alive(n));
        }
        // Every affected node was marked dirty exactly once.
        assert_eq!(tb.take_alive_dirty(), site_nodes);
        // Double outage is a no-op.
        assert!(tb
            .apply_fault(FaultKind::SitePowerOutage, FaultTarget::Site(site), SimTime::ZERO)
            .is_none());
        assert!(tb.repair(f.id));
        assert!(tb.site_powered(site));
        assert_eq!(tb.take_alive_dirty(), site_nodes);
        assert!(site_nodes.iter().all(|&n| tb.node_alive(n)));
    }

    #[test]
    fn site_outage_does_not_resurrect_dead_hardware() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        let victim = tb.clusters()[0].nodes[0];
        tb.apply_fault(FaultKind::NodeDead, FaultTarget::Node(victim), SimTime::ZERO)
            .unwrap();
        let outage = tb
            .apply_fault(FaultKind::SitePowerOutage, FaultTarget::Site(site), SimTime::ZERO)
            .unwrap();
        tb.take_alive_dirty();
        tb.repair(outage.id);
        // Power is back, but the separately-dead node stays dead — and is
        // not in the dirty set (its effective state never flipped).
        assert!(!tb.node_alive(victim));
        assert!(!tb.take_alive_dirty().contains(&victim));
    }

    #[test]
    fn link_partition_normalizes_and_repairs() {
        let mut tb = tb();
        let (a, b) = (tb.sites()[0].id, tb.sites()[1].id);
        // Inject with endpoints reversed: the stored fault is normalized.
        let f = tb
            .apply_fault(
                FaultKind::SiteLinkPartition,
                FaultTarget::SiteLink(b, a),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(f.target, FaultTarget::SiteLink(a, b));
        assert_eq!(f.signature(), format!("site-link-partition@{a}~{b}"));
        assert!(!tb.topology().sites_connected(a, b));
        // Same pair again (either order) is a no-op.
        assert!(tb
            .apply_fault(
                FaultKind::SiteLinkPartition,
                FaultTarget::SiteLink(a, b),
                SimTime::ZERO
            )
            .is_none());
        assert!(tb.repair(f.id));
        assert!(tb.topology().sites_connected(a, b));
        // Self-partition is rejected.
        assert!(tb
            .apply_fault(
                FaultKind::SiteLinkPartition,
                FaultTarget::SiteLink(a, a),
                SimTime::ZERO
            )
            .is_none());
    }

    #[test]
    fn clock_skew_applies_and_repairs() {
        let mut tb = tb();
        let site = tb.sites()[1].id;
        assert_eq!(tb.clock_skew_of(site), 0.0);
        let f = tb
            .apply_fault(FaultKind::ClockSkew, FaultTarget::Site(site), SimTime::ZERO)
            .unwrap();
        assert!(tb.clock_skew_of(site) >= 30.0);
        // Skew never touches reachability.
        assert!(tb.alive_dirty().is_empty());
        assert!(tb
            .apply_fault(FaultKind::ClockSkew, FaultTarget::Site(site), SimTime::ZERO)
            .is_none());
        tb.repair(f.id);
        assert_eq!(tb.clock_skew_of(site), 0.0);
    }

    #[test]
    fn site_faults_touch_site_nodes() {
        let mut tb = tb();
        let site = tb.sites()[0].id;
        tb.apply_fault(FaultKind::SitePowerOutage, FaultTarget::Site(site), SimTime::ZERO)
            .unwrap();
        let on_site = tb.sites()[0].clusters[0];
        let n = tb.cluster(on_site).nodes[0];
        assert_eq!(tb.faults_on_node(n).len(), 1);
        let off_site = tb.sites()[1].clusters[0];
        let m = tb.cluster(off_site).nodes[0];
        assert!(tb.faults_on_node(m).is_empty());
    }

    #[test]
    fn dimm_failures_accumulate_and_repair() {
        let mut tb = tb();
        let n = tb.clusters()[0].nodes[0];
        let full = tb.node(n).effective_memory_gb();
        let f1 = tb
            .apply_fault(FaultKind::DimmFailure, FaultTarget::Node(n), SimTime::ZERO)
            .unwrap();
        let _f2 = tb
            .apply_fault(FaultKind::DimmFailure, FaultTarget::Node(n), SimTime::ZERO)
            .unwrap();
        assert!(tb.node(n).effective_memory_gb() < full);
        assert_eq!(tb.node(n).condition.failed_dimms, 2);
        tb.repair(f1.id);
        assert_eq!(tb.node(n).condition.failed_dimms, 1);
    }
}

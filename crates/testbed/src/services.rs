//! Per-site infrastructure services.
//!
//! The paper's `cmdline` and `sidapi` test families exercise the basic
//! functionality of command-line tools and the REST API of each site; other
//! families depend on the deployment, console, VLAN and monitoring services.
//! Here each service is a small stateful object whose calls can be made
//! flaky or broken by faults ("Problems on the software side → unreliable
//! services", slide 13).

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kinds of per-site services the testbed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Site REST API frontend (the paper's "sid" API).
    ApiFrontend,
    /// OAR resource-manager server.
    OarServer,
    /// Kadeploy deployment server.
    KadeployServer,
    /// Serial console service (conman-like).
    ConsoleServer,
    /// KaVLAN network-reconfiguration service.
    KavlanServer,
    /// Kwapi power/network monitoring service.
    KwapiServer,
    /// SSH gateway into isolated VLANs.
    SshGateway,
}

impl ServiceKind {
    /// All service kinds, in a stable order.
    pub const ALL: [ServiceKind; 7] = [
        ServiceKind::ApiFrontend,
        ServiceKind::OarServer,
        ServiceKind::KadeployServer,
        ServiceKind::ConsoleServer,
        ServiceKind::KavlanServer,
        ServiceKind::KwapiServer,
        ServiceKind::SshGateway,
    ];
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceKind::ApiFrontend => "api-frontend",
            ServiceKind::OarServer => "oar-server",
            ServiceKind::KadeployServer => "kadeploy-server",
            ServiceKind::ConsoleServer => "console-server",
            ServiceKind::KavlanServer => "kavlan-server",
            ServiceKind::KwapiServer => "kwapi-server",
            ServiceKind::SshGateway => "ssh-gateway",
        };
        f.write_str(s)
    }
}

/// Error returned by a service call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The service did not answer at all.
    Down,
    /// The call failed transiently (flaky service).
    Transient(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Down => f.write_str("service down"),
            ServiceError::Transient(m) => write!(f, "transient failure: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Health of one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceHealth {
    /// Operating normally; every call succeeds.
    Healthy,
    /// Flaky: each call fails with the given probability.
    Flaky {
        /// Probability in `[0, 1]` that a call fails.
        fail_prob: f64,
    },
    /// Completely down; every call fails.
    Down,
}

/// One service instance at one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Service {
    /// What this service is.
    pub kind: ServiceKind,
    /// Current health.
    pub health: ServiceHealth,
    /// Lifetime number of calls served (diagnostics).
    pub calls: u64,
    /// Lifetime number of failed calls (diagnostics).
    pub failures: u64,
}

impl Service {
    /// A fresh healthy service.
    pub fn healthy(kind: ServiceKind) -> Self {
        Service {
            kind,
            health: ServiceHealth::Healthy,
            calls: 0,
            failures: 0,
        }
    }

    /// Perform one call against the service, drawing flaky outcomes from `rng`.
    pub fn call<R: Rng>(&mut self, rng: &mut R) -> Result<(), ServiceError> {
        self.calls += 1;
        match self.health {
            ServiceHealth::Healthy => Ok(()),
            ServiceHealth::Down => {
                self.failures += 1;
                Err(ServiceError::Down)
            }
            ServiceHealth::Flaky { fail_prob } => {
                if rng.gen_bool(fail_prob.clamp(0.0, 1.0)) {
                    self.failures += 1;
                    Err(ServiceError::Transient(format!(
                        "{} timed out",
                        self.kind
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Observed failure ratio over the service lifetime.
    pub fn failure_ratio(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.failures as f64 / self.calls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttt_sim::rng::stream_rng;

    #[test]
    fn healthy_service_always_succeeds() {
        let mut s = Service::healthy(ServiceKind::ApiFrontend);
        let mut rng = stream_rng(1, "svc");
        for _ in 0..100 {
            assert!(s.call(&mut rng).is_ok());
        }
        assert_eq!(s.calls, 100);
        assert_eq!(s.failures, 0);
    }

    #[test]
    fn down_service_always_fails() {
        let mut s = Service::healthy(ServiceKind::OarServer);
        s.health = ServiceHealth::Down;
        let mut rng = stream_rng(1, "svc");
        assert_eq!(s.call(&mut rng), Err(ServiceError::Down));
        assert_eq!(s.failure_ratio(), 1.0);
    }

    #[test]
    fn flaky_service_fails_at_rate() {
        let mut s = Service::healthy(ServiceKind::KadeployServer);
        s.health = ServiceHealth::Flaky { fail_prob: 0.3 };
        let mut rng = stream_rng(2, "svc");
        let fails = (0..2000).filter(|_| s.call(&mut rng).is_err()).count();
        let ratio = fails as f64 / 2000.0;
        assert!((0.25..0.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_kinds_distinct_display() {
        let names: std::collections::HashSet<String> =
            ServiceKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names.len(), ServiceKind::ALL.len());
    }
}

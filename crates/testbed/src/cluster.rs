//! A cluster: a homogeneous batch of nodes and its reference hardware.

use crate::hardware::{NodeHardware, Vendor};
use crate::ids::{ClusterId, NodeId, SiteId};
use serde::{Deserialize, Serialize};

/// A cluster of (supposedly) identical nodes.
///
/// `reference` is the hardware every node of the cluster *should* have — the
/// ground truth the Reference API is generated from and the state repairs
/// restore. Faults make individual nodes drift away from it; the `refapi`
/// and `dellbios` test families detect that drift as loss of homogeneity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// Dense identifier.
    pub id: ClusterId,
    /// Cluster name, e.g. `"graphene"`.
    pub name: String,
    /// Owning site.
    pub site: SiteId,
    /// Chassis vendor (drives the `dellbios` family).
    pub vendor: Vendor,
    /// Member nodes, in host-number order.
    pub nodes: Vec<NodeId>,
    /// Whether nodes carry Infiniband HCAs (drives `mpigraph`).
    pub has_ib: bool,
    /// Whether the disk configuration is introspectable enough for the
    /// `disk` test family (HDD with controllable caches).
    pub disk_checkable: bool,
    /// The hardware template all member nodes should match.
    pub reference: NodeHardware,
}

impl Cluster {
    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cores per node according to the reference hardware.
    pub fn cores_per_node(&self) -> u32 {
        self.reference.cores()
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.cores_per_node() * self.nodes.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::*;
    use std::collections::BTreeMap;

    #[test]
    fn core_accounting() {
        let reference = NodeHardware {
            cpu: CpuSpec {
                model: "m".into(),
                microarch: "a".into(),
                sockets: 2,
                cores_per_socket: 8,
                threads_per_core: 1,
                base_freq_mhz: 2400,
                turbo_enabled: false,
                ht_enabled: false,
                cstates_enabled: false,
                pstate_driver: PstateDriver::IntelPstate,
            },
            mem: MemSpec::uniform(8, 16, 2133),
            disks: vec![],
            nics: vec![],
            bios: BiosSpec {
                vendor: Vendor::Dell,
                version: "2.0".into(),
                settings: BTreeMap::new(),
            },
            ib: None,
            gpu: None,
        };
        let c = Cluster {
            id: ClusterId(0),
            name: "grisou".into(),
            site: SiteId(0),
            vendor: Vendor::Dell,
            nodes: (0..24u32).map(NodeId).collect(),
            has_ib: false,
            disk_checkable: true,
            reference,
        };
        assert_eq!(c.node_count(), 24);
        assert_eq!(c.cores_per_node(), 16);
        assert_eq!(c.total_cores(), 384);
    }
}

//! Typed identifiers for testbed entities.
//!
//! All identifiers are small dense integers assigned by the generator, so
//! they can index into the `Testbed` arenas directly and live in copy types.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The dense index backing this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i as $repr)
            }
        }
    };
}

id_type!(
    /// A testbed site (geographic location hosting clusters and services).
    SiteId,
    u16,
    "site-"
);
id_type!(
    /// A homogeneous group of nodes bought together.
    ClusterId,
    u16,
    "cluster-"
);
id_type!(
    /// A single compute node.
    NodeId,
    u32,
    "node-"
);
id_type!(
    /// A network switch.
    SwitchId,
    u16,
    "switch-"
);
id_type!(
    /// A power distribution unit carrying per-port wattmeters.
    PduId,
    u16,
    "pdu-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(SiteId(3).to_string(), "site-3");
        assert_eq!(NodeId(120).to_string(), "node-120");
        assert_eq!(PduId(0).to_string(), "pdu-0");
    }

    #[test]
    fn index_roundtrip() {
        let id: NodeId = 42usize.into();
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(ClusterId(1));
        set.insert(ClusterId(1));
        set.insert(ClusterId(2));
        assert_eq!(set.len(), 2);
        assert!(ClusterId(1) < ClusterId(2));
    }
}

//! # ttt-bench — benchmark harness
//!
//! One Criterion bench per paper experiment; the mapping lives in
//! DESIGN.md §5. The benches measure this *implementation* (simulation
//! throughput), while the paper-shaped outputs (tables/series) come from
//! the `examples/` binaries — EXPERIMENTS.md records both.

#![forbid(unsafe_code)]

/// Re-exported so benches share one place for common setup.
pub mod setup {
    use ttt_kadeploy::{standard_images, Environment};
    use ttt_refapi::{describe, RefApi, TestbedDescription};
    use ttt_sim::SimTime;
    use ttt_testbed::{Testbed, TestbedBuilder};

    /// The paper-scale testbed plus its published description.
    pub fn paper_world() -> (Testbed, TestbedDescription, Vec<Environment>) {
        let tb = TestbedBuilder::paper_scale().build();
        let desc = describe(&tb, 1, SimTime::ZERO);
        (tb, desc, standard_images())
    }

    /// A published Reference API archive for the paper-scale testbed.
    pub fn paper_refapi(tb: &Testbed) -> RefApi {
        let mut api = RefApi::new();
        api.publish_from(tb, SimTime::ZERO);
        api
    }
}

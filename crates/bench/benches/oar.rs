//! The OAR substrate: request-language parsing and scheduling throughput
//! (supports experiments E5, E8 and E9, which all ride on the scheduler).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use ttt_bench::setup::paper_world;
use ttt_oar::{parse_request, Expr, JobKind, OarServer, Queue, ResourceRequest};
use ttt_sim::SimDuration;

const PAPER_REQUEST: &str =
    "cluster='a' and gpu='YES'/nodes=1+cluster='b' and eth10g='Y'/nodes=2,walltime=2";

fn bench_parser(c: &mut Criterion) {
    c.bench_function("oar/parse_paper_request", |b| {
        b.iter(|| black_box(parse_request(PAPER_REQUEST, SimDuration::from_hours(1)).unwrap()))
    });
}

fn bench_scheduling(c: &mut Criterion) {
    let (tb, desc, _) = paper_world();

    c.bench_function("oar/submit_100_jobs_paper_testbed", |b| {
        b.iter_batched(
            || OarServer::new(&tb, &desc),
            |mut server| {
                for i in 0..100u32 {
                    let req = ResourceRequest::nodes(
                        Expr::True,
                        (i % 8) + 1,
                        SimDuration::from_hours(1),
                    );
                    server
                        .submit("bench", Queue::Default, JobKind::User, req)
                        .unwrap();
                }
                black_box(server.busy_nodes())
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("oar/immediate_assignment_whole_cluster", |b| {
        let server = OarServer::new(&tb, &desc);
        let req = ResourceRequest::all_nodes(
            Expr::eq("cluster", "graphene"),
            SimDuration::from_hours(2),
        );
        b.iter(|| black_box(server.immediate_assignment(&req)))
    });
}

criterion_group!(benches, bench_parser, bench_scheduling);
criterion_main!(benches);

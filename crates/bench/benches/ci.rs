//! Experiment E4 (slide 15): the Jenkins matrix — "14 images × 32 clusters
//! = 448 configurations" — plus queue/executor throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use ttt_ci::{expand_axes, Axis, BuildResult, Cause, CiServer, JobKind, JobSpec};

fn paper_axes() -> Vec<Axis> {
    let images: Vec<String> = (0..14).map(|i| format!("img{i}")).collect();
    let clusters: Vec<String> = (0..32).map(|i| format!("cluster{i}")).collect();
    vec![Axis::new("image", images), Axis::new("cluster", clusters)]
}

fn bench_matrix_expansion(c: &mut Criterion) {
    let axes = paper_axes();
    c.bench_function("ci/expand_14x32_matrix", |b| {
        b.iter(|| {
            let cells = expand_axes(&axes);
            assert_eq!(cells.len(), 448);
            black_box(cells)
        })
    });
    eprintln!(
        "[shape] matrix expansion: {} cells (paper: 448)",
        expand_axes(&axes).len()
    );
}

fn bench_build_cycle(c: &mut Criterion) {
    c.bench_function("ci/trigger_assign_finish_448_cells", |b| {
        b.iter_batched(
            || {
                let mut s = CiServer::new(16);
                s.register(JobSpec {
                    name: "environments".into(),
                    kind: JobKind::Matrix { axes: paper_axes() },
                    trigger: None,
                });
                s
            },
            |mut s| {
                let refs = s.trigger("environments", Cause::Manual);
                assert_eq!(refs.len(), 448);
                let mut done = 0;
                loop {
                    let work = s.assign();
                    if work.is_empty() {
                        break;
                    }
                    for w in work {
                        s.finish(&w.build, BuildResult::Success, vec![]);
                        done += 1;
                    }
                }
                assert_eq!(done, 448);
                black_box(s.history("environments").len())
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_matrix_expansion, bench_build_cycle);
criterion_main!(benches);

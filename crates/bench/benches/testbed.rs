//! Experiment E1 (slide 6): the testbed substrate itself.
//!
//! Verifies the generator emits the paper's scale and measures the cost of
//! generation, fault application/repair, and one g5k-checks node pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use ttt_bench::setup::paper_world;
use ttt_nodecheck::check_node;
use ttt_sim::SimTime;
use ttt_testbed::{FaultKind, FaultTarget, TestbedBuilder};

fn bench_generation(c: &mut Criterion) {
    c.bench_function("testbed/generate_paper_scale", |b| {
        b.iter(|| {
            let tb = TestbedBuilder::paper_scale().build();
            assert_eq!(tb.nodes().len(), 894);
            assert_eq!(tb.total_cores(), 8490);
            black_box(tb)
        })
    });
}

fn bench_fault_cycle(c: &mut Criterion) {
    let (tb, _, _) = paper_world();
    c.bench_function("testbed/fault_apply_repair", |b| {
        b.iter_batched(
            || tb.clone(),
            |mut tb| {
                let n = tb.clusters()[0].nodes[0];
                let f = tb
                    .apply_fault(FaultKind::CpuCStatesDrift, FaultTarget::Node(n), SimTime::ZERO)
                    .unwrap();
                tb.repair(f.id);
                black_box(tb.active_faults().len())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_nodecheck(c: &mut Criterion) {
    let (tb, desc, _) = paper_world();
    let node = tb.cluster_by_name("grisou").unwrap().nodes[0];
    c.bench_function("testbed/g5k_checks_single_node", |b| {
        b.iter(|| black_box(check_node(&tb, &desc, node)))
    });
    c.bench_function("testbed/g5k_checks_full_sweep_894_nodes", |b| {
        b.iter(|| {
            let mut mismatches = 0usize;
            for n in tb.nodes() {
                mismatches += check_node(&tb, &desc, n.id).mismatches.len();
            }
            black_box(mismatches)
        })
    });
}

criterion_group!(benches, bench_generation, bench_fault_cycle, bench_nodecheck);
criterion_main!(benches);

//! Read-plane throughput: the multi-tenant query engine against held
//! snapshot epochs.
//!
//! Two shapes:
//!
//! - `parallel_readers_10k`: a rayon fan-out answering a fixed
//!   deterministic batch of 10 000 queries against the hub's held epochs
//!   — the pure read-plane ceiling. QPS = 10 000 / (median seconds);
//!   `BENCH_10.json` records the derived figure next to the median.
//! - `grid_of_grids_day_1m_users`: the acceptance workload — a 64-site
//!   grid-of-grids campaign day with the query plane armed at one million
//!   tenant users, versus the same day disarmed. The spread between the
//!   two is the write-plane cost of publishing + inline sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rayon::IntoParallelRefIterator;
use std::hint::black_box;
use std::sync::Arc;
use ttt_core::snapshot::{fold_answer, random_query, CampaignSnapshot, Query, QueryEngine};
use ttt_core::{Campaign, CampaignConfig};
use ttt_sim::SimDuration;

/// An armed small campaign's hub contents plus a deterministic query
/// batch: `(epoch index, query)` pairs drawn from the `queries` stream
/// against the epoch they target.
fn held_epochs_and_batch(n: usize) -> (Vec<Arc<CampaignSnapshot>>, Vec<(usize, Query)>) {
    let mut cfg = CampaignConfig::small(42);
    cfg.queries_per_day = 10_000.0;
    cfg.query_users = 1_000;
    let mut c = Campaign::new(cfg);
    let hub = c.snapshot_hub().expect("armed config builds a hub");
    c.run();
    let epochs: Vec<Arc<CampaignSnapshot>> = (hub.published() - hub.held() as u64 + 1
        ..=hub.published())
        .filter_map(|e| hub.at_epoch(e))
        .collect();
    let mut rng = ttt_sim::rng::stream_rng(7, "bench-queries");
    let batch = (0..n)
        .map(|i| {
            let idx = i % epochs.len();
            (idx, random_query(&mut rng, &epochs[idx]))
        })
        .collect();
    (epochs, batch)
}

fn bench_parallel_readers(c: &mut Criterion) {
    let mut group = c.benchmark_group("queries");
    group.sample_size(20);
    let (epochs, batch) = held_epochs_and_batch(10_000);
    group.bench_function("parallel_readers_10k", |b| {
        b.iter(|| {
            let folds: Vec<u64> = batch
                .par_iter()
                .map(|(idx, q)| fold_answer(0, &QueryEngine::answer(&epochs[*idx], q)))
                .collect();
            black_box(folds.into_iter().fold(0u64, |a, f| a ^ f))
        })
    });
    group.finish();
}

fn bench_armed_grid_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    for (name, per_day, users) in [
        ("grid_of_grids_day_disarmed", 0.0, 0u64),
        ("grid_of_grids_day_1m_users", 2_000_000.0, 1_000_000),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cfg = ttt_core::scenario::grid_of_grids_scenario(42, 64);
                    cfg.duration = SimDuration::from_days(1);
                    cfg.queries_per_day = per_day;
                    cfg.query_users = users;
                    cfg
                },
                |cfg| {
                    let mut campaign = Campaign::new(cfg);
                    campaign.run();
                    let stats = campaign.query_stats();
                    black_box((campaign.metrics().tests_run, stats.issued, stats.executed))
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_readers, bench_armed_grid_day);
criterion_main!(benches);

//! Experiment E5 (slides 16–17): external-scheduler decision throughput
//! with the full 751-entry list against the paper-scale testbed.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use ttt_bench::setup::paper_world;
use ttt_ci::{CiServer, JobKind, JobSpec};
use ttt_jobsched::{ExternalScheduler, PolicyConfig, TestEntry};
use ttt_oar::OarServer;
use ttt_sim::rng::stream_rng;
use ttt_sim::SimTime;
use ttt_suite::build_suite;

fn entries() -> (OarServer, CiServer, Vec<TestEntry>) {
    let (tb, desc, images) = paper_world();
    let oar = OarServer::new(&tb, &desc);
    let mut ci = CiServer::new(16);
    let suite = build_suite(&tb, &images);
    for family in ttt_suite::Family::ALL {
        ci.register(JobSpec {
            name: family.job_name().to_string(),
            kind: JobKind::Freestyle,
            trigger: None,
        });
    }
    let entries: Vec<TestEntry> = suite
        .iter()
        .map(|cfg| TestEntry {
            id: cfg.id(),
            ci_job: cfg.family.job_name().to_string(),
            cell: cfg.cell(),
            site: cfg.site(&tb),
            request: cfg.resource_request(&tb),
            hardware_centric: cfg.family.hardware_centric(),
            period: cfg.family.period(),
        })
        .collect();
    assert_eq!(entries.len(), 751, "slide 21 coverage");
    (oar, ci, entries)
}

fn bench_tick(c: &mut Criterion) {
    let (oar, ci, entries) = entries();
    eprintln!("[shape] scheduler entry list: {} configurations (paper: 751)", entries.len());
    c.bench_function("jobsched/first_tick_751_entries", |b| {
        b.iter_batched(
            || {
                (
                    ExternalScheduler::new(PolicyConfig::default(), entries.clone()),
                    ci_clone(&ci),
                    stream_rng(5, "bench-sched"),
                )
            },
            |(mut sched, mut ci, mut rng)| {
                // 03:00 Monday: off-peak, empty testbed — everything either
                // triggers or defers on the same-site cap.
                let decisions = sched.tick(SimTime::from_hours(3), &mut ci, &oar, &mut rng);
                black_box(decisions.len())
            },
            BatchSize::LargeInput,
        )
    });
}

/// CiServer is deliberately not Clone (histories can be huge); rebuild.
fn ci_clone(_template: &CiServer) -> CiServer {
    let mut ci = CiServer::new(16);
    for family in ttt_suite::Family::ALL {
        ci.register(JobSpec {
            name: family.job_name().to_string(),
            kind: JobKind::Freestyle,
            trigger: None,
        });
    }
    ci
}

criterion_group!(benches, bench_tick);
criterion_main!(benches);

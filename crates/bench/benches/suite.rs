//! Experiment E7 (slide 21): the 751-configuration suite — generation cost
//! and representative per-family execution cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use ttt_bench::setup::{paper_refapi, paper_world};
use ttt_kadeploy::Deployer;
use ttt_kavlan::KavlanManager;
use ttt_kwapi::MetricStore;
use ttt_oar::OarServer;
use ttt_sim::rng::stream_rng;
use ttt_sim::{SimDuration, SimTime};
use ttt_suite::{build_suite, family_counts, run_test, Family, Target, TestConfig, TestCtx};

fn bench_generation(c: &mut Criterion) {
    let (tb, _, images) = paper_world();
    c.bench_function("suite/build_751_configurations", |b| {
        b.iter(|| {
            let suite = build_suite(&tb, &images);
            assert_eq!(suite.len(), 751);
            black_box(suite)
        })
    });
    let suite = build_suite(&tb, &images);
    eprintln!("[shape] suite size: {} (paper: 751); per family:", suite.len());
    for (family, count) in family_counts(&suite) {
        eprintln!("[shape]   {family:<15} {count}");
    }
}

fn bench_families(c: &mut Criterion) {
    let (tb, _, images) = paper_world();
    let refapi = paper_refapi(&tb);
    let desc = refapi.latest().unwrap().clone();
    let oar = OarServer::new(&tb, &desc);
    let cluster = tb.cluster_by_name("grisou").unwrap();
    let one_node = vec![cluster.nodes[0]];
    let all_nodes = cluster.nodes.clone();

    let mut group = c.benchmark_group("suite/family");
    for (name, family, target, assigned) in [
        (
            "refapi_sweep",
            Family::Refapi,
            Target::Cluster("grisou".into()),
            one_node.clone(),
        ),
        (
            "disk_whole_cluster",
            Family::Disk,
            Target::Cluster("grisou".into()),
            all_nodes.clone(),
        ),
        (
            "environments_one_cell",
            Family::Environments,
            Target::ImageCluster {
                image: "debian9-min".into(),
                cluster: "grisou".into(),
            },
            one_node.clone(),
        ),
    ] {
        let cfg = TestConfig { family, target };
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    (
                        tb.clone(),
                        KavlanManager::new(),
                        MetricStore::new(tb.nodes().len(), 600, SimDuration::from_mins(1)),
                        stream_rng(6, "bench-suite"),
                    )
                },
                |(mut tbx, mut kavlan, mut kwapi, mut rng)| {
                    let deployer = Deployer::default();
                    let mut ctx = TestCtx {
                        tb: &mut tbx,
                        refapi: &refapi,
                        oar: &oar,
                        kavlan: &mut kavlan,
                        kwapi: &mut kwapi,
                        deployer: &deployer,
                        images: &images,
                        assigned: &assigned,
                        now: SimTime::from_hours(3),
                        rng: &mut rng,
                    };
                    black_box(run_test(&cfg, &mut ctx))
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_families);
criterion_main!(benches);

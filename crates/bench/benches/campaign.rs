//! Experiments E8/E9 (slides 22–23): end-to-end campaign throughput.
//!
//! Full paper-scale months are example territory (`examples/longitudinal`);
//! here we measure the cost of campaign days so regressions in the
//! orchestration loop show up.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use ttt_core::scenario::scheduling_scenario;
use ttt_core::{Campaign, CampaignConfig, Engine, SchedulingMode};
use ttt_sim::SimDuration;

fn bench_small_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/small");
    group.sample_size(10);
    group.bench_function("small_testbed_10_days", |b| {
        b.iter_batched(
            || CampaignConfig::small(42),
            |cfg| {
                let mut campaign = Campaign::new(cfg);
                campaign.run();
                black_box(campaign.metrics().tests_run)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_paper_scale_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/paper_scale");
    group.sample_size(10);
    for (name, engine) in [
        ("one_day", Engine::NextEvent),
        ("one_day_lockstep", Engine::Lockstep),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cfg = scheduling_scenario(42, SchedulingMode::External);
                    cfg.duration = SimDuration::from_days(1);
                    cfg.engine = engine;
                    cfg
                },
                |cfg| {
                    let mut campaign = Campaign::new(cfg);
                    campaign.run();
                    black_box(campaign.metrics().tests_run)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_multi_site_day(c: &mut Criterion) {
    // The federation acceptance bench: the 8-site paper testbed with
    // site-scoped faults (outages, partitions, skew) arriving aggressively
    // — per-site queues, failover and spillover on the hot path, on a
    // one-minute decision grid (site failures deserve minute-level
    // detection latency). The next-event engine must stay no slower than
    // lockstep here: its wake computation now spans every site's queues,
    // while lockstep grinds all 1440 grid instants.
    let mut group = c.benchmark_group("campaign/multi_site");
    group.sample_size(10);
    for (name, engine) in [
        ("one_day", Engine::NextEvent),
        ("one_day_lockstep", Engine::Lockstep),
        ("one_day_parallel", Engine::ParallelSite),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cfg = ttt_core::scenario::multi_site_scenario(42);
                    cfg.duration = SimDuration::from_days(1);
                    cfg.tick = SimDuration::from_mins(1);
                    cfg.engine = engine;
                    cfg
                },
                |cfg| {
                    let mut campaign = Campaign::new(cfg);
                    campaign.run();
                    black_box(campaign.metrics().tests_run)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_grid_of_grids(c: &mut Criterion) {
    // The scale-out bench: a 64-site grid-of-grids federation (128
    // clusters, 1024 nodes) over one day. This is where the sharded
    // engine's parallel fan-outs — per-domain OAR advance, dirty-node
    // sync, availability and placement probes — have enough sites to
    // amortize the pool dispatch; on a multi-core host ParallelSite
    // should pull ahead of NextEvent here, and on any host all engines
    // stay bit-identical (tests/engine_equivalence.rs).
    let mut group = c.benchmark_group("campaign/grid_of_grids");
    group.sample_size(10);
    for (name, engine) in [
        ("64_sites_one_day", Engine::NextEvent),
        ("64_sites_one_day_parallel", Engine::ParallelSite),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cfg = ttt_core::scenario::grid_of_grids_scenario(42, 64);
                    cfg.duration = SimDuration::from_days(1);
                    cfg.engine = engine;
                    cfg
                },
                |cfg| {
                    let mut campaign = Campaign::new(cfg);
                    campaign.run();
                    black_box(campaign.metrics().tests_run)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_quiet_month(c: &mut Criterion) {
    // The next-event engine's home turf: a quiet paper-scale month (no
    // tests, no faults, no users) on a fine one-minute decision grid. The
    // lockstep engine grinds through 43 200 ticks; the next-event engine
    // wakes only on metric/operator cadences — its cost is independent of
    // tick resolution.
    let mut group = c.benchmark_group("campaign/quiet_month");
    group.sample_size(10);
    for (name, engine) in [
        ("next_event", Engine::NextEvent),
        ("lockstep", Engine::Lockstep),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cfg = ttt_core::scenario::no_testing_scenario(42);
                    cfg.injector = ttt_testbed::InjectorConfig::quiescent();
                    cfg.initial_fault_burden = 0;
                    cfg.user_load.peak_jobs_per_day = 0.0;
                    cfg.duration = SimDuration::from_days(30);
                    cfg.tick = SimDuration::from_mins(1);
                    cfg.engine = engine;
                    cfg
                },
                |cfg| {
                    let mut campaign = Campaign::new(cfg);
                    campaign.run();
                    black_box(campaign.metrics().tests_run)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_small_campaign,
    bench_paper_scale_day,
    bench_multi_site_day,
    bench_grid_of_grids,
    bench_quiet_month
);
criterion_main!(benches);

//! Experiments E8/E9 (slides 22–23): end-to-end campaign throughput.
//!
//! Full paper-scale months are example territory (`examples/longitudinal`);
//! here we measure the cost of campaign days so regressions in the
//! orchestration loop show up.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use ttt_core::scenario::scheduling_scenario;
use ttt_core::{Campaign, CampaignConfig, SchedulingMode};
use ttt_sim::SimDuration;

fn bench_small_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/small");
    group.sample_size(10);
    group.bench_function("small_testbed_10_days", |b| {
        b.iter_batched(
            || CampaignConfig::small(42),
            |cfg| {
                let mut campaign = Campaign::new(cfg);
                campaign.run();
                black_box(campaign.metrics().tests_run)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_paper_scale_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/paper_scale");
    group.sample_size(10);
    group.bench_function("one_day", |b| {
        b.iter_batched(
            || {
                let mut cfg = scheduling_scenario(42, SchedulingMode::External);
                cfg.duration = SimDuration::from_days(1);
                cfg
            },
            |cfg| {
                let mut campaign = Campaign::new(cfg);
                campaign.run();
                black_box(campaign.metrics().tests_run)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_small_campaign, bench_paper_scale_day);
criterion_main!(benches);

//! Experiment E3 (slide 9): monitoring "captured at high frequency (≈1 Hz)".
//!
//! Measures full-testbed sampling ticks (894 wattmeters per second of
//! virtual time) and query cost, and asserts the observed rate is 1 Hz.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use ttt_bench::setup::paper_world;
use ttt_kwapi::{MetricStore, PowerSampler};
use ttt_sim::rng::stream_rng;
use ttt_sim::{SimDuration, SimTime};

fn bench_sampling(c: &mut Criterion) {
    let (tb, _, _) = paper_world();
    let sampler = PowerSampler::default();
    let loads = BTreeMap::new();
    let mut rng = stream_rng(3, "bench-kwapi");

    c.bench_function("kwapi/sample_894_wattmeters_once", |b| {
        let mut store = MetricStore::new(tb.nodes().len(), 3600, SimDuration::from_mins(1));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_secs(1);
            sampler.sample_all(&tb, &loads, t, &mut store, &mut rng);
            black_box(store.len())
        })
    });

    c.bench_function("kwapi/one_minute_at_1hz_full_testbed", |b| {
        b.iter(|| {
            let mut store = MetricStore::new(tb.nodes().len(), 120, SimDuration::from_mins(1));
            sampler.run(
                &tb,
                &loads,
                SimTime::ZERO,
                SimTime::from_secs(60),
                &mut store,
                &mut rng,
            );
            black_box(store.power(tb.nodes()[0].id).raw_len())
        })
    });

    // Shape assertion: the sampler really runs at 1 Hz.
    let mut store = MetricStore::new(tb.nodes().len(), 600, SimDuration::from_mins(1));
    sampler.run(
        &tb,
        &loads,
        SimTime::ZERO,
        SimTime::from_secs(120),
        &mut store,
        &mut rng,
    );
    let hz = store.power(tb.nodes()[0].id).observed_hz().unwrap();
    assert!((hz - 1.0).abs() < 0.01, "observed {hz} Hz");
    eprintln!("[shape] observed sampling rate: {hz:.3} Hz (paper: ≈1 Hz)");
}

fn bench_query(c: &mut Criterion) {
    let (tb, _, _) = paper_world();
    let sampler = PowerSampler::default();
    let mut rng = stream_rng(4, "bench-kwapi-q");
    let mut store = MetricStore::new(tb.nodes().len(), 3600, SimDuration::from_mins(1));
    sampler.run(
        &tb,
        &BTreeMap::new(),
        SimTime::ZERO,
        SimTime::from_secs(600),
        &mut store,
        &mut rng,
    );
    let node = tb.nodes()[0].id;
    c.bench_function("kwapi/range_query_10min", |b| {
        b.iter(|| {
            black_box(
                store
                    .power(node)
                    .mean(SimTime::ZERO, SimTime::from_secs(600)),
            )
        })
    });
}

criterion_group!(benches, bench_sampling, bench_query);
criterion_main!(benches);

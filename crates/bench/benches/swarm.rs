//! Scenario-swarm throughput: scenarios/sec joins the perf trajectory.
//!
//! Two shapes: the full differential pipeline (both engines + all oracles,
//! what CI's smoke job runs) and the generation+next-event-only sweep
//! (the pure campaign-throughput ceiling).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttt_scengen::{run_swarm, seed_block, Oracles};

fn bench_swarm(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarm");
    group.sample_size(10);

    group.bench_function("8_seeds_all_oracles", |b| {
        let seeds = seed_block(1, 8);
        let oracles = Oracles::default();
        b.iter(|| {
            let report = run_swarm(&seeds, &oracles, false);
            assert!(report.all_passed());
            black_box(report.total_tests_run())
        })
    });

    group.bench_function("8_seeds_next_event_only", |b| {
        let seeds = seed_block(1, 8);
        let oracles = Oracles::none();
        b.iter(|| {
            let report = run_swarm(&seeds, &oracles, false);
            black_box(report.total_tests_run())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_swarm);
criterion_main!(benches);

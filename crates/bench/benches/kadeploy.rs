//! Experiment E2 (slide 8): deployment scalability, "200 nodes in ~5 min".
//!
//! Measures simulated-deployment cost at several node counts and asserts
//! the modelled makespan shape once per bench run.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use ttt_bench::setup::paper_world;
use ttt_kadeploy::Deployer;
use ttt_sim::rng::stream_rng;
use ttt_testbed::NodeId;

fn bench_deploy_scaling(c: &mut Criterion) {
    let (tb, _, images) = paper_world();
    let env = images.iter().find(|e| e.name == "debian9-base").unwrap();
    let mut pool: Vec<NodeId> = tb.cluster_by_name("graphene").unwrap().nodes.clone();
    pool.extend(tb.cluster_by_name("griffon").unwrap().nodes.iter().copied());

    let mut group = c.benchmark_group("kadeploy/deploy");
    for &n in &[50usize, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || (tb.clone(), stream_rng(7, "bench-deploy")),
                |(mut tb, mut rng)| {
                    let report =
                        Deployer::default().deploy(&mut tb, env, &pool[..n], &mut rng);
                    black_box(report.makespan)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // Shape assertion (printed once): 200 clean nodes land near 5 minutes.
    let mut tb2 = tb.clone();
    let mut rng = stream_rng(7, "bench-deploy-shape");
    let clean = Deployer::new(ttt_kadeploy::DeployConfig {
        step_fail_prob: 0.0,
        ..Default::default()
    });
    let report = clean.deploy(&mut tb2, env, &pool[..200], &mut rng);
    let mins = report.makespan.as_mins_f64();
    assert!((3.0..7.0).contains(&mins), "200-node makespan {mins:.1} min");
    eprintln!("[shape] 200-node clean deployment: {mins:.1} min (paper: ~5)");
}

criterion_group!(benches, bench_deploy_scaling);
criterion_main!(benches);

//! Coverage-guided fuzzing throughput: the cost of the 64-execution
//! acceptance budget, and the random baseline it is judged against.
//!
//! The headline metric of this subsystem is scenario-*diversity* per
//! CPU-second, not raw scenarios/sec — the committed plateau comparison
//! (fuzzer ≤ 64 executions vs a 256-seed random sweep) lives in
//! BENCH_5.json next to these medians.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttt_scengen::{random_coverage, run_fuzz, seed_block, Corpus, FuzzConfig};

fn bench_fuzz(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz");
    group.sample_size(10);

    group.bench_function("64_executions_coverage_only", |b| {
        let cfg = FuzzConfig {
            root_seed: 1,
            budget: 64,
            ..FuzzConfig::default()
        };
        b.iter(|| {
            let report = run_fuzz(&cfg, Corpus::new());
            black_box(report.corpus.len())
        })
    });

    group.bench_function("random_64_coverage_only", |b| {
        let seeds = seed_block(1, 64);
        b.iter(|| {
            let (corpus, _) = random_coverage(&seeds);
            black_box(corpus.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fuzz);
criterion_main!(benches);

//! The detlint command-line front end.
//!
//! ```text
//! cargo run --release -p ttt_detlint --example detlint -- [options]
//!
//!   --root <dir>        workspace root (default: .)
//!   --baseline <file>   ratchet state (default: <root>/detlint-baseline.json)
//!   --write-baseline    rewrite the baseline from the current run,
//!                       carrying existing reasons over
//!   --json <file>       also write the full report as JSON
//! ```
//!
//! Exit codes: 0 — clean under the ratchet; 1 — violations or debt
//! growth; 2 — usage or I/O error. With no baseline on disk the run
//! reports raw violations and exits 1 unless everything is already
//! clean, mirroring a fully-strict first run.

use std::path::PathBuf;
use std::process::ExitCode;
use ttt_detlint::{lint, ratchet, render_human, sim_registry, write_baseline, Baseline, Workspace};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut do_write = false;
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a value"),
            },
            "--write-baseline" => do_write = true,
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("detlint-baseline.json"));

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("detlint: cannot load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let report = lint(&ws.files, &sim_registry());

    if let Some(p) = &json_path {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                if let Err(e) = std::fs::write(p, s + "\n") {
                    eprintln!("detlint: cannot write {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
            Err(e) => {
                eprintln!("detlint: cannot serialize report: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let prev: Option<Baseline> = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match serde_json::from_str(&text) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!(
                    "detlint: cannot parse baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => None,
    };

    if do_write {
        let next = write_baseline(&report, prev.as_ref());
        let text = match serde_json::to_string_pretty(&next) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("detlint: cannot serialize baseline: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&baseline_path, text + "\n") {
            eprintln!("detlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let blank = next
            .rules
            .iter()
            .map(|r| r.reason.trim().is_empty() as usize)
            .sum::<usize>()
            + next
                .buggify
                .uncovered
                .iter()
                .map(|u| u.reason.trim().is_empty() as usize)
                .sum::<usize>();
        println!(
            "detlint: wrote {} ({} entries need a reason)",
            baseline_path.display(),
            blank
        );
        return ExitCode::SUCCESS;
    }

    match prev {
        Some(baseline) => {
            let outcome = ratchet(&report, &baseline);
            print!("{}", render_human(&report, Some(&outcome)));
            if outcome.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        None => {
            print!("{}", render_human(&report, None));
            if report.violations.is_empty() && report.audit.uncovered.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "detlint: no baseline at {} — run with --write-baseline to freeze current debt",
                    baseline_path.display()
                );
                ExitCode::from(1)
            }
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("detlint: {msg}");
    eprintln!(
        "usage: detlint [--root <dir>] [--baseline <file>] [--write-baseline] [--json <file>]"
    );
    ExitCode::from(2)
}

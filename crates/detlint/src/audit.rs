//! The buggify-surface audit.
//!
//! The paper's thesis is that a testbed's software must itself be
//! tested under injected faults. The runtime half of that story lives
//! in `ttt_sim::rpc`: every `Buggify::fire`/`fire_hashed` call names
//! its callsite, and the crate exports a registry describing each one.
//! This module is the static half:
//!
//! 1. it enumerates every `.fire("…")` / `.fire_hashed("…")` in
//!    non-test library code and reconciles the set against the
//!    registry in both directions (`unregistered-buggify-callsite`,
//!    `stale-buggify-registration`);
//! 2. it enumerates the *fault surface* — `Result`-returning functions
//!    in the six service crates, the static stand-in for "IO-shaped
//!    operations that can fail" — and reports which of them contain a
//!    buggify arm, as a covered/total density per crate.
//!
//! Uncovered surface functions are not violations by themselves; the
//! baseline must either cover them or name a reason they stay bare,
//! which turns ROADMAP's "grow buggify toward FoundationDB density"
//! into a ratchet instead of an aspiration.

use crate::rules::{brace_match, find_pattern, FileCtx, Violation};
use crate::FileKind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The service crates whose `Result`-returning functions form the
/// audited fault surface.
pub const SERVICE_CRATES: &[&str] = &[
    "ttt_ci",
    "ttt_kadeploy",
    "ttt_kwapi",
    "ttt_oar",
    "ttt_refapi",
    "ttt_status",
];

/// A runtime registry entry, decoupled from `ttt_sim` so the linter
/// core stays testable with synthetic registries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Callsite name as passed to `fire`/`fire_hashed`.
    pub name: String,
    /// Crate the registry claims hosts it.
    pub crate_name: String,
}

/// One `.fire("…")` site found in code.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FireSite {
    /// Callsite name from the string literal.
    pub callsite: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// Buggify density of one service crate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrateDensity {
    /// Crate name.
    pub crate_name: String,
    /// Surface functions containing a buggify arm.
    pub covered: usize,
    /// Total surface functions.
    pub total: usize,
}

/// A surface function with no buggify arm in its body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UncoveredFn {
    /// Crate name.
    pub crate_name: String,
    /// Repo-relative file.
    pub file: String,
    /// Function name.
    pub fn_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// The audit half of a lint report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Audit {
    /// Per-service-crate buggify density, sorted by crate name.
    pub crates: Vec<CrateDensity>,
    /// Surface functions without an arm, sorted by (crate, file, line).
    pub uncovered: Vec<UncoveredFn>,
    /// Every fire site found in non-test library code.
    pub fires: Vec<FireSite>,
}

/// Run the audit over all files. Returns the audit data plus the
/// registry-reconciliation violations.
pub fn run_audit(ctxs: &[FileCtx], registry: &[RegistryEntry]) -> (Audit, Vec<Violation>) {
    let mut fires: Vec<FireSite> = Vec::new();
    // (crate, file) → fire offsets, for the coverage check below.
    let mut fire_offsets: BTreeMap<String, Vec<usize>> = BTreeMap::new();

    for ctx in ctxs {
        if ctx.file.kind != FileKind::Lib {
            continue;
        }
        for pat in [".fire(", ".fire_hashed("] {
            for at in find_pattern(&ctx.view, pat) {
                if ctx.in_test_code(at) {
                    continue;
                }
                let open = at + pat.len();
                let Some(name) = string_literal_at(&ctx.file.text, open) else {
                    continue;
                };
                fires.push(FireSite {
                    callsite: name,
                    file: ctx.file.path.clone(),
                    line: ctx.line_of(at),
                });
                fire_offsets
                    .entry(ctx.file.path.clone())
                    .or_default()
                    .push(at);
            }
        }
    }

    // Registry reconciliation, both directions.
    let mut violations = Vec::new();
    let registered: BTreeSet<&str> = registry.iter().map(|e| e.name.as_str()).collect();
    let in_code: BTreeSet<&str> = fires.iter().map(|f| f.callsite.as_str()).collect();
    for f in &fires {
        if !registered.contains(f.callsite.as_str()) {
            violations.push(Violation {
                rule: "unregistered-buggify-callsite".into(),
                file: f.file.clone(),
                line: f.line,
                message: format!(
                    "callsite `{}` is not in ttt_sim::rpc::BUGGIFY_CALLSITES",
                    f.callsite
                ),
            });
        }
    }
    for e in registry {
        if !in_code.contains(e.name.as_str()) {
            violations.push(Violation {
                rule: "stale-buggify-registration".into(),
                file: "crates/sim/src/rpc.rs".into(),
                line: 1,
                message: format!("registered callsite `{}` has no fire in code", e.name),
            });
        }
    }

    // Fault-surface enumeration over the service crates.
    let mut density: BTreeMap<String, (usize, usize)> = SERVICE_CRATES
        .iter()
        .map(|&c| (c.to_string(), (0, 0)))
        .collect();
    let mut uncovered = Vec::new();
    for ctx in ctxs {
        if ctx.file.kind != FileKind::Lib
            || !SERVICE_CRATES.contains(&ctx.file.crate_name.as_str())
        {
            continue;
        }
        let offsets = fire_offsets
            .get(&ctx.file.path)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        for f in surface_fns(&ctx.view) {
            if ctx.in_test_code(f.at) {
                continue;
            }
            let entry = density
                .get_mut(&ctx.file.crate_name)
                .expect("service crate pre-seeded");
            entry.1 += 1;
            let covered = offsets
                .iter()
                .any(|&o| o >= f.body_start && o < f.body_end);
            if covered {
                entry.0 += 1;
            } else {
                uncovered.push(UncoveredFn {
                    crate_name: ctx.file.crate_name.clone(),
                    file: ctx.file.path.clone(),
                    fn_name: f.name,
                    line: ctx.line_of(f.at),
                });
            }
        }
    }

    uncovered.sort_by(|a, b| {
        (&a.crate_name, &a.file, a.line).cmp(&(&b.crate_name, &b.file, b.line))
    });
    fires.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let audit = Audit {
        crates: density
            .into_iter()
            .map(|(crate_name, (covered, total))| CrateDensity {
                crate_name,
                covered,
                total,
            })
            .collect(),
        uncovered,
        fires,
    };
    (audit, violations)
}

/// Read the string literal starting at or just after `open` in the
/// *raw* source (the code view has blanked it): skip whitespace,
/// expect `"`, return the text up to the closing quote.
fn string_literal_at(src: &str, open: usize) -> Option<String> {
    let b = src.as_bytes();
    let mut i = open;
    while i < b.len() && (b[i] as char).is_whitespace() {
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None;
    }
    let start = i + 1;
    let end = start + src[start..].find('"')?;
    Some(src[start..end].to_string())
}

/// One enumerated fault-surface function.
struct SurfaceFn {
    name: String,
    /// Offset of the `fn` keyword.
    at: usize,
    body_start: usize,
    body_end: usize,
}

/// Enumerate `Result`-returning functions with bodies in a code view.
fn surface_fns(view: &str) -> Vec<SurfaceFn> {
    let b = view.as_bytes();
    let mut out = Vec::new();
    for at in find_pattern(view, "fn") {
        // Require whitespace after the keyword (rules out `fn` inside
        // paths — the boundary check already rules out identifiers).
        let mut i = at + 2;
        if i >= b.len() || !(b[i] as char).is_whitespace() {
            continue;
        }
        while i < b.len() && (b[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = view[name_start..i].to_string();
        // Find the argument list (skipping generics) and match it.
        let Some(open_rel) = view[i..].find('(') else {
            continue;
        };
        let args_open = i + open_rel;
        let args_end = paren_match(b, args_open);
        // The return-type region runs to the body `{` or a `;`
        // (trait method declarations have no body and are skipped).
        let mut j = args_end;
        let mut body_open = None;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    body_open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = body_open else { continue };
        let ret = &view[args_end..open];
        if !(ret.contains("->") && ret.contains("Result")) {
            continue;
        }
        // Display/Debug impls return `fmt::Result`; formatting is not
        // a fault surface.
        if ret.contains("fmt::Result") {
            continue;
        }
        let body_end = brace_match(b, open);
        out.push(SurfaceFn {
            name,
            at,
            body_start: open,
            body_end,
        });
    }
    out
}

/// Offset one past the `)` matching the `(` at `open` (or EOF).
fn paren_match(b: &[u8], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

//! # ttt-detlint — workspace determinism lint + buggify-surface audit
//!
//! The paper's reproduction lives and dies by determinism: three
//! engines must produce bit-identical campaigns from a seed, so a
//! single wall-clock read or hash-ordered iteration in the wrong place
//! is a correctness bug, not a style nit. This crate makes that class
//! of bug a *build failure*:
//!
//! * [`lexer`] — a purpose-built Rust surface lexer; rules can never
//!   fire inside comments or string literals;
//! * [`rules`] — the per-tier rule catalogue (`no-wall-clock`,
//!   `no-ambient-rng`, `no-unordered-iteration`, `no-rc-in-shared`,
//!   `no-unwrap-in-lib`, `require-forbid-unsafe`) with inline
//!   `// detlint: allow(rule) -- reason` escapes;
//! * [`audit`] — the buggify-surface audit: which `Result`-returning
//!   service functions carry a fault-injection arm, reconciled against
//!   the runtime registry exported by `ttt_sim::rpc`;
//! * [`report`] — human/JSON reports and the committed-baseline
//!   ratchet that lets CI fail only on *new* debt.
//!
//! The core is pure — [`lint`] maps in-memory [`SourceFile`]s to a
//! [`LintReport`] — so the test suite runs entirely on fixtures; only
//! [`Workspace::load`] and the `detlint` example binary touch the
//! filesystem.

#![forbid(unsafe_code)]

pub mod audit;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use audit::{Audit, CrateDensity, FireSite, RegistryEntry, UncoveredFn};
pub use report::{ratchet, render_human, write_baseline, Baseline, LintReport, RatchetOutcome};
pub use rules::{FileCtx, Violation, RULES};

/// Where a file sits in its crate — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/`.
    Lib,
    /// Under `tests/`.
    Test,
    /// Under `examples/`.
    Example,
    /// Under `benches/`.
    Bench,
}

/// One source file to lint.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path (`crates/oar/src/server.rs`).
    pub path: String,
    /// Cargo package name (`ttt_oar`).
    pub crate_name: String,
    /// Library, test, example or bench code.
    pub kind: FileKind,
    /// File contents.
    pub text: String,
}

/// Lint `files` against `registry`: run every file-local rule, then
/// the buggify-surface audit.
pub fn lint(files: &[SourceFile], registry: &[RegistryEntry]) -> LintReport {
    let ctxs: Vec<FileCtx> = files.iter().map(FileCtx::new).collect();
    let mut violations = Vec::new();
    for ctx in &ctxs {
        violations.extend(rules::run_file_rules(ctx));
    }
    let (audit, audit_violations) = audit::run_audit(&ctxs, registry);
    violations.extend(audit_violations);
    violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    LintReport { violations, audit }
}

/// The runtime buggify registry, converted from `ttt_sim::rpc`.
pub fn sim_registry() -> Vec<RegistryEntry> {
    ttt_sim::BUGGIFY_CALLSITES
        .iter()
        .map(|c| RegistryEntry {
            name: c.name.to_string(),
            crate_name: c.crate_name.to_string(),
        })
        .collect()
}

/// A loaded workspace: every `.rs` file of every member crate.
pub struct Workspace {
    /// All source files, repo-relative, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Load the workspace rooted at `root` (the directory holding the
    /// top-level `Cargo.toml`): each `crates/*` package plus the
    /// facade package at the root itself.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            load_package(root, &dir, &mut files)?;
        }
        // The facade package at the workspace root.
        load_package(root, root, &mut files)?;
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }
}

/// Load one Cargo package's `src/`, `tests/`, `examples/`, `benches/`.
fn load_package(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    let crate_name = package_name(&dir.join("Cargo.toml"))?;
    for (sub, kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("examples", FileKind::Example),
        ("benches", FileKind::Bench),
    ] {
        let sub_dir = dir.join(sub);
        if !sub_dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&sub_dir, &mut paths)?;
        paths.sort();
        for p in paths {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile {
                path: rel,
                crate_name: crate_name.clone(),
                kind,
                text: fs::read_to_string(&p)?,
            });
        }
    }
    Ok(())
}

/// Recursively collect `.rs` files.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The `name = "…"` of a Cargo manifest.
fn package_name(manifest: &Path) -> io::Result<String> {
    let text = fs::read_to_string(manifest)?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Ok(v.to_string());
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("no package name in {}", manifest.display()),
    ))
}

//! The determinism rule catalogue.
//!
//! Rules never see raw source: every pattern match runs against the
//! blanked [`code view`](crate::lexer::code_view), so text inside
//! comments and string literals can never fire a rule. Each rule is
//! scoped — by file kind (library, test, example, bench), by crate
//! tier (digest-adjacent or not) and by `#[cfg(test)]` span — and each
//! firing can be silenced in place with
//!
//! ```text
//! // detlint: allow(<rule>) -- <reason>
//! ```
//!
//! on the offending line or on its own line directly above. An escape
//! with a missing reason is itself a violation
//! (`escape-missing-reason`), as is one naming a rule that does not
//! exist (`escape-unknown-rule`): silencing is cheap, but it always
//! leaves a paper trail.

use crate::lexer::{self, TokKind, Token};
use crate::{FileKind, SourceFile};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One rule of the catalogue.
pub struct RuleSpec {
    /// Stable kebab-case name (used in escapes and baselines).
    pub name: &'static str,
    /// One-line description for reports.
    pub desc: &'static str,
}

/// The full catalogue. Names are the vocabulary of escapes and
/// baseline entries; reports list them verbatim.
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        name: "no-wall-clock",
        desc: "simulation code must not read the wall clock",
    },
    RuleSpec {
        name: "no-ambient-rng",
        desc: "randomness must come from seeded, named streams",
    },
    RuleSpec {
        name: "no-unordered-iteration",
        desc: "digest-adjacent code must not use hash-ordered containers",
    },
    RuleSpec {
        name: "no-rc-in-shared",
        desc: "library code must not hide shared mutable state behind Rc",
    },
    RuleSpec {
        name: "no-unwrap-in-lib",
        desc: "library code must surface errors, not unwrap them",
    },
    RuleSpec {
        name: "require-forbid-unsafe",
        desc: "every crate root must carry #![forbid(unsafe_code)]",
    },
    RuleSpec {
        name: "escape-missing-reason",
        desc: "a detlint escape must state its reason after `--`",
    },
    RuleSpec {
        name: "escape-unknown-rule",
        desc: "a detlint escape must name a rule from the catalogue",
    },
    RuleSpec {
        name: "unregistered-buggify-callsite",
        desc: "a buggify fire site must be registered in ttt_sim::rpc",
    },
    RuleSpec {
        name: "stale-buggify-registration",
        desc: "a registered buggify callsite must exist in code",
    },
];

/// Whether `name` is a catalogue rule.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One rule firing at a location.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Violation {
    /// Catalogue rule name.
    pub rule: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable detail.
    pub message: String,
}

/// A parsed `// detlint: allow(rule) -- reason` comment.
#[derive(Debug, Clone)]
pub struct Escape {
    /// The rule the escape names (possibly unknown).
    pub rule: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Whether a non-empty reason follows `--`.
    pub has_reason: bool,
}

/// Everything the rules need about one file, computed once.
pub struct FileCtx<'a> {
    /// The file being linted.
    pub file: &'a SourceFile,
    /// Its token partition.
    pub tokens: Vec<Token>,
    /// Blanked code view (same length/offsets as the source).
    pub view: String,
    /// Newline offsets for line lookup.
    pub newlines: Vec<usize>,
    /// Byte spans of `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Parsed escapes.
    pub escapes: Vec<Escape>,
    /// line → rules allowed on that line.
    allowed: BTreeMap<u32, BTreeSet<String>>,
}

impl<'a> FileCtx<'a> {
    /// Lex and index `file`.
    pub fn new(file: &'a SourceFile) -> Self {
        let tokens = lexer::lex(&file.text);
        let view = lexer::code_view(&file.text, &tokens);
        let newlines = lexer::line_index(&file.text);
        let test_spans = find_test_spans(&view);
        let escapes = parse_escapes(&file.text, &tokens, &newlines);
        let allowed = allow_map(&escapes, &view);
        FileCtx {
            file,
            tokens,
            view,
            newlines,
            test_spans,
            escapes,
            allowed,
        }
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, at: usize) -> u32 {
        lexer::line_of(&self.newlines, at)
    }

    /// Whether offset `at` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, at: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// Whether an escape allows `rule` on `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allowed
            .get(&line)
            .map(|rules| rules.contains(rule))
            .unwrap_or(false)
    }
}

/// Byte spans of `#[cfg(test)]` items: from the attribute to the end
/// of the brace-matched block that follows it. Runs on the code view,
/// so braces inside strings or comments cannot confuse the matcher.
fn find_test_spans(view: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = view[from..].find("#[cfg(test)]") {
        let at = from + rel;
        match view[at..].find('{') {
            Some(open_rel) => {
                let open = at + open_rel;
                let end = brace_match(view.as_bytes(), open);
                spans.push((at, end));
                from = end;
            }
            None => break,
        }
    }
    spans
}

/// Offset one past the `}` matching the `{` at `open` (or EOF).
pub fn brace_match(b: &[u8], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Parse every `detlint: allow(...)` line comment.
fn parse_escapes(src: &str, tokens: &[Token], newlines: &[usize]) -> Vec<Escape> {
    let mut escapes = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = src[t.start..t.end].trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix("detlint: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim();
        let has_reason = tail
            .strip_prefix("--")
            .map(|r| !r.trim().is_empty())
            .unwrap_or(false);
        escapes.push(Escape {
            rule,
            line: lexer::line_of(newlines, t.start),
            has_reason,
        });
    }
    escapes
}

/// line → allowed rules. An escape on a line with code covers that
/// line; an escape on a comment-only line covers the next line that
/// has code.
fn allow_map(escapes: &[Escape], view: &str) -> BTreeMap<u32, BTreeSet<String>> {
    // Lines with at least one non-whitespace code byte.
    let mut code_lines: BTreeSet<u32> = BTreeSet::new();
    let mut line = 1u32;
    for b in view.bytes() {
        if b == b'\n' {
            line += 1;
        } else if !b.is_ascii_whitespace() {
            code_lines.insert(line);
        }
    }
    let mut map: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for e in escapes {
        let target = if code_lines.contains(&e.line) {
            Some(e.line)
        } else {
            code_lines.range(e.line + 1..).next().copied()
        };
        if let Some(t) = target {
            map.entry(t).or_default().insert(e.rule.clone());
        }
    }
    map
}

/// All boundary-respecting occurrences of `pat` in `view`: a pattern
/// whose first (last) character is an identifier character must not be
/// preceded (followed) by one, so `HashMap` does not match
/// `MyHashMapper` and `Rc<` does not match `Arc<`.
pub fn find_pattern(view: &str, pat: &str) -> Vec<usize> {
    let b = view.as_bytes();
    let first_ident = pat
        .as_bytes()
        .first()
        .map(|c| c.is_ascii_alphanumeric() || *c == b'_')
        .unwrap_or(false);
    let last_ident = pat
        .as_bytes()
        .last()
        .map(|c| c.is_ascii_alphanumeric() || *c == b'_')
        .unwrap_or(false);
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = view[from..].find(pat) {
        let at = from + rel;
        let pre_ok = !first_ident || at == 0 || !ident(b[at - 1]);
        let end = at + pat.len();
        let post_ok = !last_ident || end >= b.len() || !ident(b[end]);
        if pre_ok && post_ok {
            out.push(at);
        }
        from = at + pat.len();
    }
    out
}

/// The digest-adjacent tier: every crate whose behavior feeds the
/// campaign digests. Only the bench harness and detlint itself are
/// outside it.
pub fn digest_adjacent(crate_name: &str) -> bool {
    crate_name != "ttt_bench" && crate_name != "ttt_detlint"
}

struct PatternRule {
    rule: &'static str,
    patterns: &'static [&'static str],
    /// Whether the rule applies to this file at all.
    in_scope: fn(&SourceFile) -> bool,
    /// Whether `#[cfg(test)]` spans are exempt.
    skip_tests: bool,
}

const PATTERN_RULES: &[PatternRule] = &[
    PatternRule {
        rule: "no-wall-clock",
        patterns: &["Instant::now", "SystemTime"],
        in_scope: |_| true,
        skip_tests: false,
    },
    PatternRule {
        rule: "no-ambient-rng",
        patterns: &["thread_rng", "from_entropy", "OsRng", "rand::random"],
        in_scope: |_| true,
        skip_tests: false,
    },
    PatternRule {
        rule: "no-unordered-iteration",
        patterns: &["HashMap", "HashSet"],
        in_scope: |f| f.kind == FileKind::Lib && digest_adjacent(&f.crate_name),
        skip_tests: true,
    },
    PatternRule {
        rule: "no-rc-in-shared",
        patterns: &["Rc<", "Rc::new"],
        in_scope: |f| f.kind == FileKind::Lib,
        skip_tests: true,
    },
    PatternRule {
        rule: "no-unwrap-in-lib",
        patterns: &[".unwrap()"],
        in_scope: |f| f.kind == FileKind::Lib,
        skip_tests: true,
    },
];

/// Run every file-local rule over `ctx`.
pub fn run_file_rules(ctx: &FileCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    let path = &ctx.file.path;

    // The escapes themselves first: unknown rules and missing reasons.
    for e in &ctx.escapes {
        if !is_rule(&e.rule) {
            out.push(Violation {
                rule: "escape-unknown-rule".into(),
                file: path.clone(),
                line: e.line,
                message: format!("escape names unknown rule `{}`", e.rule),
            });
        }
        if !e.has_reason {
            out.push(Violation {
                rule: "escape-missing-reason".into(),
                file: path.clone(),
                line: e.line,
                message: format!(
                    "escape for `{}` has no `-- <reason>` trailer",
                    e.rule
                ),
            });
        }
    }

    for pr in PATTERN_RULES {
        if !(pr.in_scope)(ctx.file) {
            continue;
        }
        for pat in pr.patterns {
            for at in find_pattern(&ctx.view, pat) {
                if pr.skip_tests && ctx.in_test_code(at) {
                    continue;
                }
                let line = ctx.line_of(at);
                if ctx.allowed(pr.rule, line) {
                    continue;
                }
                out.push(Violation {
                    rule: pr.rule.into(),
                    file: path.clone(),
                    line,
                    message: format!("`{pat}` in non-exempt code"),
                });
            }
        }
    }

    // Crate roots must forbid unsafe code outright.
    if ctx.file.path.ends_with("src/lib.rs")
        && !ctx.view.contains("#![forbid(unsafe_code)]")
        && !ctx.allowed("require-forbid-unsafe", 1)
    {
        out.push(Violation {
            rule: "require-forbid-unsafe".into(),
            file: path.clone(),
            line: 1,
            message: "crate root lacks #![forbid(unsafe_code)]".into(),
        });
    }

    out
}

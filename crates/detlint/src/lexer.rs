//! A purpose-built Rust surface lexer.
//!
//! detlint rules must never fire on text inside comments or string
//! literals — a doc comment mentioning `HashMap` is not a violation.
//! Rather than drag in a full parser, this module partitions a source
//! file into a flat run of [`Token`]s of six kinds: plain code, line
//! comments, (nested) block comments, string literals, raw string
//! literals and character literals. Every byte of the input belongs to
//! exactly one token, in order — the partition invariant is guarded by
//! the proptest suite (`tests/lexer_props.rs`).
//!
//! The only genuinely subtle case is `'` — it opens a char literal
//! (`'a'`, `'\n'`, `'é'`) or introduces a lifetime (`&'static str`,
//! `<'a>`). The lexer peeks one UTF-8 character past the quote: if the
//! byte after it closes the quote (or the quote escapes), it is a char
//! literal; otherwise the quote is ordinary code and the lifetime
//! identifier flows on as code.

/// What a span of source text is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Anything that is not a comment or literal.
    Code,
    /// `// ...` to (but excluding) the newline. Doc comments included.
    LineComment,
    /// `/* ... */`, nesting respected.
    BlockComment,
    /// `"..."` or `b"..."` with escapes.
    Str,
    /// `r"..."`, `r#"..."#`, `br##"..."##` — any number of hashes.
    RawStr,
    /// `'x'`, `b'x'`, `'\''`, `'\u{1F600}'`.
    Char,
}

/// One contiguous span of the input: `src[start..end]` is `kind`.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Span kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Partition `src` into tokens covering every byte, in order.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks: Vec<Token> = Vec::new();
    let mut code_start = 0usize;
    let mut i = 0usize;

    // Close the pending Code token (if non-empty) at offset `at`.
    let flush = |toks: &mut Vec<Token>, code_start: usize, at: usize| {
        if code_start < at {
            toks.push(Token {
                kind: TokKind::Code,
                start: code_start,
                end: at,
            });
        }
    };

    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                flush(&mut toks, code_start, i);
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::LineComment,
                    start,
                    end: i,
                });
                code_start = i;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                flush(&mut toks, code_start, i);
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Token {
                    kind: TokKind::BlockComment,
                    start,
                    end: i,
                });
                code_start = i;
            }
            b'"' => {
                flush(&mut toks, code_start, i);
                let start = i;
                i = consume_string(b, i + 1);
                toks.push(Token {
                    kind: TokKind::Str,
                    start,
                    end: i,
                });
                code_start = i;
            }
            // `r"…"` / `r#"…"#` / `br"…"` / `b"…"` / `b'…'` — only when
            // the prefix letter is not the tail of an identifier
            // (`var"` never happens in valid Rust, but `for_entry` must
            // not trip the `r` arm).
            c @ (b'r' | b'b') if !is_ident_byte_before(b, i) => {
                let (is_raw, quote_at) = raw_or_byte_prefix(b, i, c);
                match (is_raw, quote_at) {
                    (true, Some(q)) => {
                        flush(&mut toks, code_start, i);
                        let start = i;
                        let hashes = q - (i + if c == b'b' { 2 } else { 1 });
                        i = consume_raw_string(b, q + 1, hashes);
                        toks.push(Token {
                            kind: TokKind::RawStr,
                            start,
                            end: i,
                        });
                        code_start = i;
                    }
                    (false, Some(q)) if b[q] == b'"' => {
                        flush(&mut toks, code_start, i);
                        let start = i;
                        i = consume_string(b, q + 1);
                        toks.push(Token {
                            kind: TokKind::Str,
                            start,
                            end: i,
                        });
                        code_start = i;
                    }
                    (false, Some(q)) => {
                        // b'…' byte literal.
                        flush(&mut toks, code_start, i);
                        let start = i;
                        i = consume_char_literal(b, q + 1);
                        toks.push(Token {
                            kind: TokKind::Char,
                            start,
                            end: i,
                        });
                        code_start = i;
                    }
                    _ => i += 1,
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_end(src, b, i) {
                    flush(&mut toks, code_start, i);
                    toks.push(Token {
                        kind: TokKind::Char,
                        start: i,
                        end,
                    });
                    i = end;
                    code_start = i;
                } else {
                    // A lifetime: the quote and its identifier are code.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    flush(&mut toks, code_start, n);
    toks
}

/// Whether the byte before `i` continues an identifier (so a `r`/`b`
/// at `i` cannot start a literal prefix).
fn is_ident_byte_before(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Classify a potential `r`/`b` literal prefix at `i`.
///
/// Returns `(is_raw, Some(offset of the opening quote))` when `i`
/// starts a raw string (`r`/`br` + hashes + `"`), a byte string
/// (`b"`), or a byte char (`b'`); `(false, None)` when it is just code.
fn raw_or_byte_prefix(b: &[u8], i: usize, c: u8) -> (bool, Option<usize>) {
    let n = b.len();
    let mut j = i + 1;
    if c == b'b' {
        if j < n && b[j] == b'"' {
            return (false, Some(j)); // b"…"
        }
        if j < n && b[j] == b'\'' {
            return (false, Some(j)); // b'…'
        }
        if j < n && b[j] == b'r' {
            j += 1; // br…
        } else {
            return (false, None);
        }
    }
    // Here we sit just past `r` (or `br`): hashes then a quote open a
    // raw string.
    let mut k = j;
    while k < n && b[k] == b'#' {
        k += 1;
    }
    if k < n && b[k] == b'"' {
        (true, Some(k))
    } else {
        (false, None)
    }
}

/// Consume a non-raw string body starting just past the opening quote;
/// returns the offset one past the closing quote.
fn consume_string(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => i = (i + 2).min(n),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Consume a raw string body (`hashes` trailing `#`s close it)
/// starting just past the opening quote.
fn consume_raw_string(b: &[u8], mut i: usize, hashes: usize) -> usize {
    let n = b.len();
    while i < n {
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < n && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// Consume a char-literal body starting just past the opening quote;
/// returns the offset one past the closing quote.
fn consume_char_literal(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => i = (i + 2).min(n),
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Decide whether the `'` at `i` opens a char literal; if so return the
/// offset one past its closing quote, else `None` (it is a lifetime).
fn char_literal_end(src: &str, b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 1 >= n {
        return None;
    }
    if b[i + 1] == b'\\' {
        return Some(consume_char_literal(b, i + 1));
    }
    // Peek exactly one UTF-8 character past the quote: a closing quote
    // right after it means a char literal; anything else (identifier
    // characters, `>`, whitespace…) means a lifetime.
    let ch = src[i + 1..].chars().next()?;
    let after = i + 1 + ch.len_utf8();
    if after < n && b[after] == b'\'' {
        Some(after + 1)
    } else {
        None
    }
}

/// A copy of `src` in which every byte inside a non-`Code` token is
/// blanked to a space — newlines kept, so byte offsets *and* line
/// numbers survive. Rules pattern-match against this view and can
/// brace-match freely: braces inside strings and comments are gone.
pub fn code_view(src: &str, toks: &[Token]) -> String {
    let mut out = src.as_bytes().to_vec();
    for t in toks {
        if t.kind != TokKind::Code {
            for byte in &mut out[t.start..t.end] {
                if *byte != b'\n' {
                    *byte = b' ';
                }
            }
        }
    }
    // Blanking never splits a UTF-8 sequence partially: whole tokens
    // are blanked and multi-byte characters never straddle a token
    // boundary.
    String::from_utf8(out).expect("blanking preserves UTF-8")
}

/// 1-based line number of byte offset `at` (count of newlines before it
/// plus one), via the precomputed newline offsets of [`line_index`].
pub fn line_of(newlines: &[usize], at: usize) -> u32 {
    (newlines.partition_point(|&p| p < at) + 1) as u32
}

/// Byte offsets of every newline in `src`, for [`line_of`].
pub fn line_index(src: &str) -> Vec<usize> {
    src.bytes()
        .enumerate()
        .filter(|&(_, c)| c == b'\n')
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).iter().map(|t| (t.kind, &src[t.start..t.end])).collect()
    }

    #[test]
    fn partitions_plain_code() {
        let toks = lex("let x = 1;");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::Code);
    }

    #[test]
    fn line_comment_excludes_newline() {
        let v = kinds("a // c\nb");
        assert_eq!(
            v,
            vec![
                (TokKind::Code, "a "),
                (TokKind::LineComment, "// c"),
                (TokKind::Code, "\nb"),
            ]
        );
    }

    #[test]
    fn nested_block_comment() {
        let v = kinds("a/* x /* y */ z */b");
        assert_eq!(
            v,
            vec![
                (TokKind::Code, "a"),
                (TokKind::BlockComment, "/* x /* y */ z */"),
                (TokKind::Code, "b"),
            ]
        );
    }

    #[test]
    fn string_hides_comment_markers() {
        let v = kinds(r#"let s = "// not a comment";"#);
        assert!(v.iter().any(|(k, t)| *k == TokKind::Str && t.contains("//")));
        assert!(!v.iter().any(|(k, _)| *k == TokKind::LineComment));
    }

    #[test]
    fn raw_string_with_hashes_and_quote() {
        let src = "let s = r#\"she said \"hi\"\"#; done";
        let v = kinds(src);
        assert_eq!(
            v.iter().find(|(k, _)| *k == TokKind::RawStr).unwrap().1,
            "r#\"she said \"hi\"\"#"
        );
        assert!(v.last().unwrap().1.contains("done"));
    }

    #[test]
    fn lifetime_is_code_char_literal_is_not() {
        let v = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        let chars: Vec<_> = v.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'x'");
    }

    #[test]
    fn escaped_quote_char_literal() {
        let v = kinds(r"let q = '\''; let n = '\n';");
        let chars: Vec<_> = v.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn byte_string_and_byte_char() {
        let v = kinds(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert!(v.iter().any(|(k, t)| *k == TokKind::Str && t.starts_with("b\"")));
        assert!(v.iter().any(|(k, t)| *k == TokKind::Char && t.starts_with("b'")));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let v = kinds("let var_br = 1; for_entry(\"x\")");
        assert!(!v.iter().any(|(k, _)| *k == TokKind::RawStr));
    }

    #[test]
    fn code_view_blanks_but_keeps_offsets() {
        let src = "a /* HashMap */ b \"HashMap\" // HashMap\nHashMap";
        let toks = lex(src);
        let view = code_view(src, &toks);
        assert_eq!(view.len(), src.len());
        assert_eq!(view.matches("HashMap").count(), 1);
        assert_eq!(view.find("HashMap"), src.rfind("HashMap"));
    }

    #[test]
    fn line_of_counts_from_one() {
        let src = "a\nb\nc";
        let idx = line_index(src);
        assert_eq!(line_of(&idx, 0), 1);
        assert_eq!(line_of(&idx, 2), 2);
        assert_eq!(line_of(&idx, 4), 3);
    }
}

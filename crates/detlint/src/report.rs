//! Reports, baselines and the ratchet.
//!
//! detlint in CI is a *ratchet*, not a gate on perfection: the
//! committed `detlint-baseline.json` freezes today's debt — per
//! `(rule, file)` violation counts, the buggify-uncovered surface and
//! per-crate coverage floors — and the ratchet fails a run only when
//! the debt grows: a new violation, a count above its baseline, a new
//! uncovered surface function, or a coverage drop. Shrinking debt
//! produces warnings inviting the baseline to be tightened. Every
//! baseline entry must carry a non-empty `reason`; an unexplained
//! exemption is treated as a validation failure, exactly like an
//! inline escape without a reason.

use crate::audit::Audit;
use crate::rules::Violation;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The full output of a lint run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LintReport {
    /// Every rule firing (escapes already applied).
    pub violations: Vec<Violation>,
    /// The buggify-surface audit.
    pub audit: Audit,
}

/// A committed `(rule, file)` debt entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRule {
    /// Catalogue rule name.
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// Maximum tolerated firings of `rule` in `file`.
    pub count: usize,
    /// Why the debt is tolerated. Must be non-empty.
    pub reason: String,
}

/// A committed buggify-coverage floor for one crate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineCrate {
    /// Crate name.
    pub crate_name: String,
    /// Coverage floor: the run fails if fewer surface functions carry
    /// an arm.
    pub covered: usize,
    /// Surface size when the baseline was written (informational).
    pub total: usize,
}

/// A committed exemption for one uncovered surface function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineUncovered {
    /// Crate name.
    pub crate_name: String,
    /// Repo-relative file.
    pub file: String,
    /// Function name.
    pub fn_name: String,
    /// Why this function carries no buggify arm. Must be non-empty.
    pub reason: String,
}

/// The buggify half of a baseline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BaselineBuggify {
    /// Per-crate coverage floors.
    pub crates: Vec<BaselineCrate>,
    /// Tolerated uncovered surface functions.
    pub uncovered: Vec<BaselineUncovered>,
}

/// The committed ratchet state (`detlint-baseline.json`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Baseline {
    /// Format version (currently 1).
    pub version: u32,
    /// Tolerated rule debt.
    pub rules: Vec<BaselineRule>,
    /// Buggify coverage floors and exemptions.
    pub buggify: BaselineBuggify,
}

/// The ratchet verdict: failures flunk the run, warnings invite a
/// baseline tightening.
#[derive(Debug, Clone, Default)]
pub struct RatchetOutcome {
    /// New or grown debt — CI fails on any of these.
    pub failures: Vec<String>,
    /// Shrunk or stale debt — informational.
    pub warnings: Vec<String>,
}

impl RatchetOutcome {
    /// Whether the run passes.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare a report against a baseline.
pub fn ratchet(report: &LintReport, baseline: &Baseline) -> RatchetOutcome {
    let mut out = RatchetOutcome::default();

    // The baseline itself must be fully justified.
    for r in &baseline.rules {
        if r.reason.trim().is_empty() {
            out.failures.push(format!(
                "baseline entry ({}, {}) has an empty reason",
                r.rule, r.file
            ));
        }
    }
    for u in &baseline.buggify.uncovered {
        if u.reason.trim().is_empty() {
            out.failures.push(format!(
                "baseline uncovered entry {}::{} has an empty reason",
                u.file, u.fn_name
            ));
        }
    }

    // Rule debt: current per-(rule, file) counts vs tolerated counts.
    let mut current: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &report.violations {
        *current
            .entry((v.rule.clone(), v.file.clone()))
            .or_default() += 1;
    }
    let tolerated: BTreeMap<(String, String), usize> = baseline
        .rules
        .iter()
        .map(|r| ((r.rule.clone(), r.file.clone()), r.count))
        .collect();
    for ((rule, file), &n) in &current {
        match tolerated.get(&(rule.clone(), file.clone())) {
            None => {
                let lines: Vec<String> = report
                    .violations
                    .iter()
                    .filter(|v| &v.rule == rule && &v.file == file)
                    .map(|v| v.line.to_string())
                    .collect();
                out.failures.push(format!(
                    "{file}: {n} unbaselined `{rule}` violation(s) at line(s) {}",
                    lines.join(", ")
                ));
            }
            Some(&max) if n > max => out.failures.push(format!(
                "{file}: `{rule}` grew from {max} to {n}"
            )),
            Some(&max) if n < max => out.warnings.push(format!(
                "{file}: `{rule}` shrank from {max} to {n} — tighten the baseline"
            )),
            Some(_) => {}
        }
    }
    for ((rule, file), &max) in &tolerated {
        if max > 0 && !current.contains_key(&(rule.clone(), file.clone())) {
            out.warnings.push(format!(
                "stale baseline entry ({rule}, {file}) — no current violations"
            ));
        }
    }

    // Buggify surface: every uncovered function must be exempted.
    let exempt: BTreeSet<(&str, &str)> = baseline
        .buggify
        .uncovered
        .iter()
        .map(|u| (u.file.as_str(), u.fn_name.as_str()))
        .collect();
    for u in &report.audit.uncovered {
        if !exempt.contains(&(u.file.as_str(), u.fn_name.as_str())) {
            out.failures.push(format!(
                "{}:{} `{}` returns Result but has no buggify arm and no exemption",
                u.file, u.line, u.fn_name
            ));
        }
    }
    let still_uncovered: BTreeSet<(&str, &str)> = report
        .audit
        .uncovered
        .iter()
        .map(|u| (u.file.as_str(), u.fn_name.as_str()))
        .collect();
    for u in &baseline.buggify.uncovered {
        if !still_uncovered.contains(&(u.file.as_str(), u.fn_name.as_str())) {
            out.warnings.push(format!(
                "stale exemption {}::{} — now covered or gone",
                u.file, u.fn_name
            ));
        }
    }

    // Coverage floors.
    let floors: BTreeMap<&str, usize> = baseline
        .buggify
        .crates
        .iter()
        .map(|c| (c.crate_name.as_str(), c.covered))
        .collect();
    for c in &report.audit.crates {
        if let Some(&floor) = floors.get(c.crate_name.as_str()) {
            if c.covered < floor {
                out.failures.push(format!(
                    "{}: buggify coverage dropped below floor ({} < {})",
                    c.crate_name, c.covered, floor
                ));
            } else if c.covered > floor {
                out.warnings.push(format!(
                    "{}: buggify coverage rose ({} > floor {}) — raise the floor",
                    c.crate_name, c.covered, floor
                ));
            }
        }
    }

    out
}

/// Derive a fresh baseline from a report, carrying reasons over from
/// `prev` where entries match; new entries get an empty reason that
/// the validator will flag until a human fills it in.
pub fn write_baseline(report: &LintReport, prev: Option<&Baseline>) -> Baseline {
    let prev_rule_reason: BTreeMap<(String, String), String> = prev
        .map(|b| {
            b.rules
                .iter()
                .map(|r| ((r.rule.clone(), r.file.clone()), r.reason.clone()))
                .collect()
        })
        .unwrap_or_default();
    let prev_unc_reason: BTreeMap<(String, String), String> = prev
        .map(|b| {
            b.buggify
                .uncovered
                .iter()
                .map(|u| ((u.file.clone(), u.fn_name.clone()), u.reason.clone()))
                .collect()
        })
        .unwrap_or_default();

    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &report.violations {
        *counts
            .entry((v.rule.clone(), v.file.clone()))
            .or_default() += 1;
    }
    Baseline {
        version: 1,
        rules: counts
            .into_iter()
            .map(|((rule, file), count)| BaselineRule {
                reason: prev_rule_reason
                    .get(&(rule.clone(), file.clone()))
                    .cloned()
                    .unwrap_or_default(),
                rule,
                file,
                count,
            })
            .collect(),
        buggify: BaselineBuggify {
            crates: report
                .audit
                .crates
                .iter()
                .map(|c| BaselineCrate {
                    crate_name: c.crate_name.clone(),
                    covered: c.covered,
                    total: c.total,
                })
                .collect(),
            uncovered: report
                .audit
                .uncovered
                .iter()
                .map(|u| BaselineUncovered {
                    crate_name: u.crate_name.clone(),
                    file: u.file.clone(),
                    fn_name: u.fn_name.clone(),
                    reason: prev_unc_reason
                        .get(&(u.file.clone(), u.fn_name.clone()))
                        .cloned()
                        .unwrap_or_default(),
                })
                .collect(),
        },
    }
}

/// Render the human-readable report.
pub fn render_human(report: &LintReport, outcome: Option<&RatchetOutcome>) -> String {
    let mut s = String::new();
    s.push_str("detlint report\n==============\n\n");

    let mut by_rule: BTreeMap<&str, Vec<&Violation>> = BTreeMap::new();
    for v in &report.violations {
        by_rule.entry(v.rule.as_str()).or_default().push(v);
    }
    if by_rule.is_empty() {
        s.push_str("no violations\n");
    }
    for (rule, vs) in &by_rule {
        s.push_str(&format!("{rule} ({} firing(s))\n", vs.len()));
        for v in vs {
            s.push_str(&format!("  {}:{} {}\n", v.file, v.line, v.message));
        }
    }

    s.push_str("\nbuggify surface\n---------------\n");
    for c in &report.audit.crates {
        let pct = if c.total == 0 {
            0.0
        } else {
            100.0 * c.covered as f64 / c.total as f64
        };
        s.push_str(&format!(
            "  {:<14} {:>2}/{:<2} Result-returning fns armed ({pct:.0}%)\n",
            c.crate_name, c.covered, c.total
        ));
    }
    s.push_str(&format!(
        "  {} fire site(s) in code, {} uncovered surface fn(s)\n",
        report.audit.fires.len(),
        report.audit.uncovered.len()
    ));

    if let Some(o) = outcome {
        s.push_str("\nratchet\n-------\n");
        for f in &o.failures {
            s.push_str(&format!("  FAIL {f}\n"));
        }
        for w in &o.warnings {
            s.push_str(&format!("  warn {w}\n"));
        }
        if o.failures.is_empty() {
            s.push_str("  clean: no debt growth\n");
        }
    }
    s
}

//! Fire/no-fire fixtures for every rule in the catalogue.

use ttt_detlint::{lint, FileKind, SourceFile};

fn file(path: &str, crate_name: &str, kind: FileKind, text: &str) -> SourceFile {
    SourceFile {
        path: path.into(),
        crate_name: crate_name.into(),
        kind,
        text: text.into(),
    }
}

fn lib(text: &str) -> SourceFile {
    file("crates/x/src/a.rs", "ttt_x", FileKind::Lib, text)
}

fn rules_fired(files: &[SourceFile]) -> Vec<(String, u32)> {
    lint(files, &[])
        .violations
        .iter()
        .map(|v| (v.rule.clone(), v.line))
        .collect()
}

#[test]
fn wall_clock_fires_in_code() {
    let f = lib("fn f() { let t = Instant::now(); }");
    assert_eq!(rules_fired(&[f]), vec![("no-wall-clock".into(), 1)]);
}

#[test]
fn wall_clock_silent_in_comment_and_string() {
    let f = lib(
        "// Instant::now is forbidden\nfn f() { let s = \"Instant::now\"; let _ = s; }\n",
    );
    assert_eq!(rules_fired(&[f]), vec![]);
}

#[test]
fn wall_clock_fires_in_examples_too() {
    let f = file(
        "crates/x/examples/e.rs",
        "ttt_x",
        FileKind::Example,
        "fn main() { let _ = Instant::now(); }",
    );
    assert_eq!(rules_fired(&[f]), vec![("no-wall-clock".into(), 1)]);
}

#[test]
fn escape_with_reason_suppresses() {
    let f = lib(
        "fn f() {\n    // detlint: allow(no-wall-clock) -- operator-facing timer\n    let t = Instant::now();\n}\n",
    );
    assert_eq!(rules_fired(&[f]), vec![]);
}

#[test]
fn escape_on_same_line_suppresses() {
    let f = lib(
        "fn f() { let t = Instant::now(); } // detlint: allow(no-wall-clock) -- timer\n",
    );
    assert_eq!(rules_fired(&[f]), vec![]);
}

#[test]
fn escape_without_reason_is_a_violation() {
    let f = lib(
        "fn f() {\n    // detlint: allow(no-wall-clock)\n    let t = Instant::now();\n}\n",
    );
    // The named rule is still suppressed, but the bare escape fires.
    assert_eq!(
        rules_fired(&[f]),
        vec![("escape-missing-reason".into(), 2)]
    );
}

#[test]
fn escape_with_unknown_rule_is_a_violation() {
    let f = lib("// detlint: allow(no-such-rule) -- whatever\nfn f() {}\n");
    assert_eq!(rules_fired(&[f]), vec![("escape-unknown-rule".into(), 1)]);
}

#[test]
fn ambient_rng_fires() {
    let f = lib("fn f() { let mut r = rand::thread_rng(); }");
    assert_eq!(rules_fired(&[f]), vec![("no-ambient-rng".into(), 1)]);
}

#[test]
fn unordered_iteration_fires_in_digest_adjacent_lib() {
    let f = lib("use std::collections::HashMap;\n");
    assert_eq!(
        rules_fired(&[f]),
        vec![("no-unordered-iteration".into(), 1)]
    );
}

#[test]
fn unordered_iteration_exempt_in_bench_crate_and_tests() {
    let bench = file(
        "crates/bench/src/lib.rs",
        "ttt_bench",
        FileKind::Lib,
        "use std::collections::HashMap;\n#![forbid(unsafe_code)]\n",
    );
    let test = file(
        "crates/x/tests/t.rs",
        "ttt_x",
        FileKind::Test,
        "use std::collections::HashSet;\n",
    );
    assert_eq!(rules_fired(&[bench, test]), vec![]);
}

#[test]
fn unordered_iteration_exempt_in_cfg_test_mod() {
    let f = lib(
        "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { let _: HashMap<u8, u8> = HashMap::new(); }\n}\n",
    );
    assert_eq!(rules_fired(&[f]), vec![]);
}

#[test]
fn rc_fires_but_arc_does_not() {
    let rc = lib("fn f() { let x: Rc<u8> = Rc::new(1); }");
    let arc = lib("fn f() { let x: Arc<u8> = Arc::new(1); }");
    assert_eq!(rules_fired(&[rc]).len(), 2);
    assert_eq!(rules_fired(&[arc]), vec![]);
}

#[test]
fn unwrap_fires_in_lib_not_in_tests() {
    let f = lib("fn f() { let x = Some(1).unwrap(); }");
    assert_eq!(rules_fired(&[f]), vec![("no-unwrap-in-lib".into(), 1)]);
    let t = file(
        "crates/x/tests/t.rs",
        "ttt_x",
        FileKind::Test,
        "fn f() { let x = Some(1).unwrap(); }",
    );
    assert_eq!(rules_fired(&[t]), vec![]);
    // `.expect` stays allowed: it documents the invariant.
    let e = lib("fn f() { let x = Some(1).expect(\"one\"); }");
    assert_eq!(rules_fired(&[e]), vec![]);
}

#[test]
fn forbid_unsafe_required_on_crate_roots_only() {
    let bare_root = file("crates/x/src/lib.rs", "ttt_x", FileKind::Lib, "fn f() {}\n");
    assert_eq!(
        rules_fired(&[bare_root]),
        vec![("require-forbid-unsafe".into(), 1)]
    );
    let good_root = file(
        "crates/x/src/lib.rs",
        "ttt_x",
        FileKind::Lib,
        "#![forbid(unsafe_code)]\nfn f() {}\n",
    );
    assert_eq!(rules_fired(&[good_root]), vec![]);
    let non_root = lib("fn f() {}\n");
    assert_eq!(rules_fired(&[non_root]), vec![]);
}

#[test]
fn hashmap_in_doc_comment_is_fine() {
    let f = lib("//! Uses a `HashMap`-free design.\nfn f() {}\n");
    assert_eq!(rules_fired(&[f]), vec![]);
}

//! The workspace gate: `cargo test` runs detlint over this repository
//! against the committed baseline, so determinism debt cannot grow —
//! and new buggify callsites cannot land unregistered — without this
//! test failing.

use std::path::Path;
use ttt_detlint::{lint, ratchet, render_human, sim_registry, Baseline, Workspace};

fn repo_root() -> &'static Path {
    // crates/detlint/../.. — the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels under the workspace root")
}

#[test]
fn workspace_is_clean_under_the_ratchet() {
    let root = repo_root();
    let ws = Workspace::load(root).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "workspace walk looks wrong: {} files",
        ws.files.len()
    );
    let report = lint(&ws.files, &sim_registry());

    let baseline_path = root.join("detlint-baseline.json");
    let text = std::fs::read_to_string(&baseline_path).expect("committed baseline exists");
    let baseline: Baseline = serde_json::from_str(&text).expect("baseline parses");

    let outcome = ratchet(&report, &baseline);
    assert!(
        outcome.clean(),
        "detlint ratchet failed:\n{}",
        render_human(&report, Some(&outcome))
    );
}

#[test]
fn registry_and_code_agree_exactly() {
    let ws = Workspace::load(repo_root()).expect("workspace loads");
    let report = lint(&ws.files, &sim_registry());
    let reconciliation: Vec<_> = report
        .violations
        .iter()
        .filter(|v| {
            v.rule == "unregistered-buggify-callsite" || v.rule == "stale-buggify-registration"
        })
        .collect();
    assert!(
        reconciliation.is_empty(),
        "registry drift: {reconciliation:?}"
    );
}

#[test]
fn every_crate_root_forbids_unsafe() {
    let ws = Workspace::load(repo_root()).expect("workspace loads");
    let report = lint(&ws.files, &sim_registry());
    let missing: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "require-forbid-unsafe")
        .collect();
    assert!(missing.is_empty(), "crate roots lacking forbid: {missing:?}");
}

//! Property tests for the lexer: the token partition invariant must
//! hold for arbitrary inputs, including pathological mixes of quotes,
//! comment markers and backslashes.

use proptest::prelude::*;
use ttt_detlint::lexer::{code_view, lex, line_index, line_of, TokKind};

/// Tokens must cover every byte, in order, with no gaps or overlaps.
fn assert_partition(src: &str) {
    let toks = lex(src);
    let mut at = 0usize;
    for t in &toks {
        assert_eq!(t.start, at, "gap or overlap at byte {at} in {src:?}");
        assert!(t.end > t.start, "empty token in {src:?}");
        at = t.end;
    }
    assert_eq!(at, src.len(), "tokens do not cover {src:?}");
    // Concatenating the token texts round-trips the input.
    let rebuilt: String = toks.iter().map(|t| &src[t.start..t.end]).collect();
    assert_eq!(rebuilt, src);
}

/// Characters likely to trip the lexer: comment markers, quotes,
/// escapes, raw-string prefixes and hashes, braces, newlines.
const SOUP: &[char] = &[
    '/', '*', '"', '\'', '\\', 'r', 'b', '#', ' ', '\n', 'a', 'c', '{', '}', 'é',
];

fn soup(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..SOUP.len(), 0..max_len)
        .prop_map(|ixs| ixs.into_iter().map(|i| SOUP[i]).collect())
}

proptest! {
    /// Strings rich in lexer trigger characters partition cleanly.
    #[test]
    fn partition_trigger_soup(src in soup(40)) {
        assert_partition(&src);
    }

    /// The code view never changes length and never un-blanks bytes.
    #[test]
    fn code_view_same_length(src in soup(40)) {
        let toks = lex(&src);
        let view = code_view(&src, &toks);
        prop_assert_eq!(view.len(), src.len());
        // Newlines survive in place.
        for (a, b) in src.bytes().zip(view.bytes()) {
            prop_assert_eq!(a == b'\n', b == b'\n');
        }
    }

    /// line_of agrees with a naive newline count.
    #[test]
    fn line_of_matches_naive(src in soup(30), frac in 0.0f64..1.0) {
        let idx = line_index(&src);
        let at = ((src.len() as f64) * frac) as usize;
        let mut at = at.min(src.len());
        while !src.is_char_boundary(at) {
            at -= 1;
        }
        let naive = src.as_bytes()[..at]
            .iter()
            .filter(|&&c| c == b'\n')
            .count() as u32
            + 1;
        prop_assert_eq!(line_of(&idx, at), naive);
    }
}

#[test]
fn partition_realistic_rust() {
    let src = r##"
//! Doc comment with `HashMap` mention.
use std::collections::BTreeMap; // trailing note
fn main() {
    let s = "string with // and /* markers";
    let r = r#"raw "quoted" body"#;
    let c = '\''; let lt: &'static str = "x";
    /* block /* nested */ done */
    println!("{s}{r}{c}{lt}");
}
"##;
    assert_partition(src);
    let toks = lex(src);
    assert!(toks.iter().any(|t| t.kind == TokKind::RawStr));
    assert!(toks.iter().any(|t| t.kind == TokKind::BlockComment));
    assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    let view = code_view(src, &toks);
    // Every flagged word lives only in comments/strings here.
    assert!(!view.contains("HashMap"));
    assert!(!view.contains("markers"));
    assert!(!view.contains("nested"));
}

//! The baseline ratchet: equal debt passes, grown debt fails, shrunk
//! debt warns, and unexplained exemptions are failures in themselves.

use ttt_detlint::report::{
    ratchet, write_baseline, Baseline, BaselineBuggify, BaselineCrate, BaselineRule,
    BaselineUncovered,
};
use ttt_detlint::{lint, FileKind, LintReport, SourceFile};

fn lib_with_unwraps(n: usize) -> SourceFile {
    let body: String = (0..n)
        .map(|i| format!("    let x{i} = Some({i}).unwrap();\n"))
        .collect();
    SourceFile {
        path: "crates/x/src/a.rs".into(),
        crate_name: "ttt_x".into(),
        kind: FileKind::Lib,
        text: format!("fn f() {{\n{body}}}\n"),
    }
}

fn report_with_unwraps(n: usize) -> LintReport {
    lint(&[lib_with_unwraps(n)], &[])
}

fn baseline_unwraps(count: usize, reason: &str) -> Baseline {
    Baseline {
        version: 1,
        rules: vec![BaselineRule {
            rule: "no-unwrap-in-lib".into(),
            file: "crates/x/src/a.rs".into(),
            count,
            reason: reason.into(),
        }],
        buggify: BaselineBuggify::default(),
    }
}

#[test]
fn equal_debt_passes() {
    let out = ratchet(&report_with_unwraps(2), &baseline_unwraps(2, "grandfathered"));
    assert!(out.clean(), "failures: {:?}", out.failures);
    assert!(out.warnings.is_empty());
}

#[test]
fn grown_debt_fails() {
    let out = ratchet(&report_with_unwraps(3), &baseline_unwraps(2, "grandfathered"));
    assert!(!out.clean());
    assert!(out.failures[0].contains("grew from 2 to 3"));
}

#[test]
fn shrunk_debt_warns() {
    let out = ratchet(&report_with_unwraps(1), &baseline_unwraps(2, "grandfathered"));
    assert!(out.clean());
    assert_eq!(out.warnings.len(), 1);
    assert!(out.warnings[0].contains("tighten"));
}

#[test]
fn unbaselined_violation_fails_with_lines() {
    let out = ratchet(&report_with_unwraps(1), &Baseline::default());
    assert!(!out.clean());
    assert!(out.failures[0].contains("unbaselined"));
    assert!(out.failures[0].contains("line(s) 2"));
}

#[test]
fn empty_reason_is_a_failure_even_when_counts_match() {
    let out = ratchet(&report_with_unwraps(2), &baseline_unwraps(2, "  "));
    assert!(!out.clean());
    assert!(out.failures[0].contains("empty reason"));
}

#[test]
fn stale_entry_warns() {
    let out = ratchet(&report_with_unwraps(0), &baseline_unwraps(2, "grandfathered"));
    assert!(out.clean());
    assert!(out.warnings[0].contains("stale baseline entry"));
}

fn service_report(armed: bool) -> LintReport {
    let fire = if armed {
        "    if self.buggify.fire_hashed(\"oar-submit\", n) { return Err(E); }\n"
    } else {
        ""
    };
    let f = SourceFile {
        path: "crates/oar/src/server.rs".into(),
        crate_name: "ttt_oar".into(),
        kind: FileKind::Lib,
        text: format!("pub fn submit(&mut self) -> Result<(), E> {{\n{fire}    Ok(())\n}}\n"),
    };
    let reg = ttt_detlint::RegistryEntry {
        name: "oar-submit".into(),
        crate_name: "ttt_oar".into(),
    };
    lint(&[f], std::slice::from_ref(&reg))
}

#[test]
fn uncovered_surface_fn_needs_an_exemption() {
    // The report has one uncovered Result fn and a stale registration
    // (the fixture never fires); exempt the fn, baseline the stale
    // registration out of the way, and the run is clean.
    let report = service_report(false);
    let out = ratchet(&report, &Baseline::default());
    assert!(out
        .failures
        .iter()
        .any(|f| f.contains("no buggify arm and no exemption")));

    let baseline = Baseline {
        version: 1,
        rules: vec![BaselineRule {
            rule: "stale-buggify-registration".into(),
            file: "crates/sim/src/rpc.rs".into(),
            count: 1,
            reason: "fixture registry".into(),
        }],
        buggify: BaselineBuggify {
            crates: vec![],
            uncovered: vec![BaselineUncovered {
                crate_name: "ttt_oar".into(),
                file: "crates/oar/src/server.rs".into(),
                fn_name: "submit".into(),
                reason: "fixture: deliberately bare".into(),
            }],
        },
    };
    let out = ratchet(&report, &baseline);
    assert!(out.clean(), "failures: {:?}", out.failures);
}

#[test]
fn coverage_floor_ratchets_both_ways() {
    let floor = |covered| Baseline {
        version: 1,
        rules: vec![],
        buggify: BaselineBuggify {
            crates: vec![BaselineCrate {
                crate_name: "ttt_oar".into(),
                covered,
                total: 1,
            }],
            uncovered: vec![],
        },
    };
    // Armed report at floor 1: clean, no warnings about coverage.
    let out = ratchet(&service_report(true), &floor(1));
    assert!(out.clean(), "failures: {:?}", out.failures);
    // Armed report above floor 0: clean plus a raise-the-floor nudge.
    let out = ratchet(&service_report(true), &floor(0));
    assert!(out.clean());
    assert!(out.warnings.iter().any(|w| w.contains("raise the floor")));
    // Unarmed report under floor 1: coverage regression fails.
    let report = service_report(false);
    let out = ratchet(&report, &floor(1));
    assert!(out
        .failures
        .iter()
        .any(|f| f.contains("dropped below floor")));
}

#[test]
fn write_baseline_carries_reasons_over() {
    let report = report_with_unwraps(2);
    let prev = baseline_unwraps(2, "carried reason");
    let next = write_baseline(&report, Some(&prev));
    assert_eq!(next.rules.len(), 1);
    assert_eq!(next.rules[0].reason, "carried reason");
    assert_eq!(next.rules[0].count, 2);
    // Without a predecessor the reason is empty — and the validator
    // treats that as a failure until a human fills it in.
    let fresh = write_baseline(&report, None);
    assert!(fresh.rules[0].reason.is_empty());
    let out = ratchet(&report, &fresh);
    assert!(!out.clean());
}

//! Fixtures for the buggify-surface audit and registry reconciliation.

use ttt_detlint::{lint, FileKind, RegistryEntry, SourceFile};

fn reg(name: &str, crate_name: &str) -> RegistryEntry {
    RegistryEntry {
        name: name.into(),
        crate_name: crate_name.into(),
    }
}

fn oar_file(text: &str) -> SourceFile {
    SourceFile {
        path: "crates/oar/src/server.rs".into(),
        crate_name: "ttt_oar".into(),
        kind: FileKind::Lib,
        text: text.into(),
    }
}

const TWO_FNS_ONE_ARMED: &str = r#"
pub fn submit(&mut self, r: Request) -> Result<Job, SubmitError> {
    if self.buggify.fire_hashed("oar-submit", self.attempts) {
        return Err(SubmitError::TransientlyRefused);
    }
    Ok(self.admit(r))
}

pub fn validate(&self, r: &Request) -> Result<(), SubmitError> {
    Ok(())
}

pub fn not_a_candidate(&self) -> usize {
    0
}
"#;

#[test]
fn density_counts_covered_and_total() {
    let report = lint(&[oar_file(TWO_FNS_ONE_ARMED)], &[reg("oar-submit", "ttt_oar")]);
    let oar = report
        .audit
        .crates
        .iter()
        .find(|c| c.crate_name == "ttt_oar")
        .expect("service crate always reported");
    assert_eq!((oar.covered, oar.total), (1, 2));
    assert_eq!(report.audit.uncovered.len(), 1);
    assert_eq!(report.audit.uncovered[0].fn_name, "validate");
    assert_eq!(report.audit.fires.len(), 1);
    assert_eq!(report.audit.fires[0].callsite, "oar-submit");
    // Registered and fired: no reconciliation violations.
    assert!(report.violations.is_empty());
}

#[test]
fn unregistered_callsite_is_a_violation() {
    let report = lint(&[oar_file(TWO_FNS_ONE_ARMED)], &[]);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "unregistered-buggify-callsite");
}

#[test]
fn stale_registration_is_a_violation() {
    let report = lint(
        &[oar_file(TWO_FNS_ONE_ARMED)],
        &[reg("oar-submit", "ttt_oar"), reg("ghost-site", "ttt_oar")],
    );
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "stale-buggify-registration");
    assert!(report.violations[0].message.contains("ghost-site"));
}

#[test]
fn fires_in_cfg_test_do_not_count() {
    let text = r#"
pub fn submit(&mut self) -> Result<(), E> {
    Ok(())
}
#[cfg(test)]
mod tests {
    fn t() { b.fire("test-only-site", &mut rng); }
}
"#;
    let report = lint(&[oar_file(text)], &[]);
    assert!(report.audit.fires.is_empty());
    // And the surface fn is simply uncovered, not a violation.
    assert_eq!(report.audit.uncovered.len(), 1);
    assert!(report.violations.is_empty());
}

#[test]
fn fmt_result_is_not_surface() {
    let text = r#"
impl fmt::Display for E {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e")
    }
}
"#;
    let report = lint(&[oar_file(text)], &[]);
    let oar = report
        .audit
        .crates
        .iter()
        .find(|c| c.crate_name == "ttt_oar")
        .expect("service crate always reported");
    assert_eq!(oar.total, 0);
}

#[test]
fn non_service_crates_are_reconciled_but_not_surfaced() {
    let testbed = SourceFile {
        path: "crates/testbed/src/testbed.rs".into(),
        crate_name: "ttt_testbed".into(),
        kind: FileKind::Lib,
        text: r#"
pub fn call(&mut self) -> Result<(), RpcError> {
    if self.buggify.fire("testbed-service-call", rng) { return Err(RpcError::Timeout); }
    Ok(())
}
"#
        .into(),
    };
    let report = lint(&[testbed], &[reg("testbed-service-call", "ttt_testbed")]);
    // The fire is seen (reconciliation) …
    assert_eq!(report.audit.fires.len(), 1);
    assert!(report.violations.is_empty());
    // … but ttt_testbed is not part of the audited service surface.
    assert!(report
        .audit
        .crates
        .iter()
        .all(|c| c.crate_name != "ttt_testbed"));
}

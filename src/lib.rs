//! # throughout — trustworthy testbeds thanks to throughout testing
//!
//! Facade crate for the reproduction of Lucas Nussbaum's REPPAR'2017 paper
//! *"Towards Trustworthy Testbeds thanks to Throughout Testing"*: a
//! continuous-testing framework for a large-scale experimental testbed,
//! together with a simulated Grid'5000-class substrate (resource manager,
//! deployment engine, VLAN isolation, monitoring, per-node verification).
//!
//! This crate re-exports every workspace crate under a short name so
//! examples and downstream users can depend on `throughout` alone:
//!
//! ```
//! use throughout::testbed::gen::TestbedBuilder;
//!
//! let tb = TestbedBuilder::paper_scale().build();
//! assert_eq!(tb.sites().len(), 8);
//! assert_eq!(tb.clusters().len(), 32);
//! assert_eq!(tb.nodes().len(), 894);
//! ```
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every reproduced result.

#![forbid(unsafe_code)]

pub use ttt_bugs as bugs;
pub use ttt_ci as ci;
pub use ttt_core as core;
pub use ttt_jobsched as jobsched;
pub use ttt_kadeploy as kadeploy;
pub use ttt_kavlan as kavlan;
pub use ttt_kwapi as kwapi;
pub use ttt_nodecheck as nodecheck;
pub use ttt_oar as oar;
pub use ttt_refapi as refapi;
pub use ttt_scengen as scengen;
pub use ttt_sim as sim;
pub use ttt_status as status;
pub use ttt_suite as suite;
pub use ttt_testbed as testbed;

//! The persistent worker pool behind every parallel pipeline.
//!
//! One global pool, started lazily on the first multi-chunk dispatch and
//! sized once from the detected parallelism. A dispatch enqueues a *job*
//! — a closure plus a count of claimable chunk indices — wakes the
//! workers, and then **participates in its own job**, claiming chunks
//! exactly like a worker until none are left. That participation is what
//! makes nested dispatch deadlock-free: a task running on a pool worker
//! can itself dispatch a job and drain it single-handedly even when every
//! other worker is blocked inside outer tasks.
//!
//! Chunks are claimed with an atomic counter, so the assignment of chunks
//! to threads is racy — but callers only ever write disjoint, chunk-owned
//! slots, and the dispatcher blocks until the last chunk reports done, so
//! results are independent of which thread ran what. A panicking chunk is
//! caught, recorded, and re-raised on the dispatcher once the batch
//! completes; the pool itself survives.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One dispatched batch: `call(data, chunk)` runs chunk `chunk`.
///
/// `data` points at a closure on the dispatcher's stack; the dispatcher
/// does not return before `done == chunks`, so the pointee outlives every
/// use (the `unsafe impl Send/Sync` below encode exactly that contract).
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    chunks: usize,
    /// Next unclaimed chunk index (may overshoot `chunks`).
    next: AtomicUsize,
    /// Chunks completed (executed or panicked).
    done: AtomicUsize,
    panicked: AtomicBool,
    /// Completion latch the dispatcher waits on.
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct PoolState {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
}

static POOL: OnceLock<Arc<PoolState>> = OnceLock::new();

fn pool() -> &'static Arc<PoolState> {
    POOL.get_or_init(|| {
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        });
        // The dispatcher always participates, so N-1 workers saturate N
        // cores; at least one worker so single-core machines still overlap
        // a blocked dispatcher.
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_sub(1)
            .max(1);
        for i in 0..workers {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(&state))
                .expect("spawn pool worker");
        }
        state
    })
}

fn worker_loop(state: &PoolState) {
    loop {
        let job: Arc<Job> = {
            let mut q = state.queue.lock().expect("pool lock");
            loop {
                // Drop jobs with nothing left to claim; grab the first
                // claimable one.
                while let Some(front) = q.front() {
                    if front.next.load(Ordering::Relaxed) >= front.chunks {
                        q.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(front) = q.front() {
                    break Arc::clone(front);
                }
                q = state.work_cv.wait(q).expect("pool lock");
            }
        };
        work_on(&job);
    }
}

/// Claim and run chunks of `job` until none are left.
fn work_on(job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.chunks {
            return;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, i) }));
        if outcome.is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        // AcqRel: the thread observing the final count sees every chunk's
        // writes.
        if job.done.fetch_add(1, Ordering::AcqRel) + 1 == job.chunks {
            let mut finished = job.finished.lock().expect("job lock");
            *finished = true;
            job.finished_cv.notify_all();
        }
    }
}

unsafe fn call_shim<F: Fn(usize) + Sync>(data: *const (), chunk: usize) {
    (*data.cast::<F>())(chunk)
}

/// Run `f(0..chunks)` across the pool, blocking until every chunk
/// completed. Chunk indices are each executed exactly once; the order and
/// thread assignment are unspecified. Panics (once, on the dispatcher) if
/// any chunk panicked.
pub fn run_chunks<F: Fn(usize) + Sync>(chunks: usize, f: &F) {
    if chunks <= 1 {
        if chunks == 1 {
            f(0);
        }
        return;
    }
    let state = pool();
    let job = Arc::new(Job {
        data: (f as *const F).cast(),
        call: call_shim::<F>,
        chunks,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        finished: Mutex::new(false),
        finished_cv: Condvar::new(),
    });
    {
        let mut q = state.queue.lock().expect("pool lock");
        q.push_back(Arc::clone(&job));
    }
    state.work_cv.notify_all();
    // Participate: drain our own job's chunks alongside the workers.
    work_on(&job);
    // Wait for chunks claimed by workers to finish.
    {
        let mut finished = job.finished.lock().expect("job lock");
        while !*finished {
            finished = job.finished_cv.wait(finished).expect("job lock");
        }
    }
    // The job is fully claimed, so workers skip it; sweep it out of the
    // queue if no worker got there first.
    {
        let mut q = state.queue.lock().expect("pool lock");
        q.retain(|j| !Arc::ptr_eq(j, &job));
    }
    if job.panicked.load(Ordering::Relaxed) {
        panic!("a parallel chunk panicked (original payload reported on its worker)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        run_chunks(97, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_chunks_run_inline() {
        run_chunks(0, &|_| panic!("no chunks to run"));
        let ran = AtomicU64::new(0);
        run_chunks(1, &|i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sequential_batches_reuse_the_pool() {
        for round in 0..50u64 {
            let sum = AtomicU64::new(0);
            run_chunks(8, &|i| {
                sum.fetch_add(round + i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 8 * round + 28);
        }
    }
}

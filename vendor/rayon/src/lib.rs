//! Vendored minimal stand-in for `rayon`.
//!
//! Supports the `(range | vec).into_par_iter().map(f).collect()` shape with
//! real parallelism: items are split into one contiguous chunk per
//! available core and mapped on `std::thread::scope` threads, preserving
//! input order in the collected output. No work stealing — fine for the
//! coarse-grained, similar-cost tasks the workspace fans out.

/// Number of worker threads used for fan-out. Like the real crate's
/// default pool, `RAYON_NUM_THREADS` overrides the core count (values
/// that fail to parse, or 0, fall back to the detected parallelism).
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_range!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion: `collection.par_iter()` over `&[T]` without
/// cloning the items (mirrors the real crate's trait of the same name).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Marker trait so `use rayon::prelude::*` keeps working for generic code.
pub trait ParallelIterator {}

/// A pending parallel pipeline over an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {}

impl<T: Send> ParIter<T> {
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        self.map(|x| f(x)).run();
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel pipeline.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParallelIterator for ParMap<T, F> {}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParMap<T, F> {
    fn run(self) -> Vec<O> {
        let ParMap { items, f } = self;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = current_num_threads().min(n);
        let chunk = n.div_ceil(threads);
        // Wrap each item so chunks can hand out owned values in order.
        let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
        let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, dst) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                        let item = slot.take().expect("slot filled above");
                        *dst = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|s| s.expect("all chunks completed"))
            .collect()
    }

    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.run().into_iter().collect()
    }

    pub fn for_each<G: Fn(O) + Sync>(self, g: G) {
        for v in self.run() {
            g(v);
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = (0u64..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn slice_par_iter_borrows_in_order() {
        let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let out: Vec<usize> = items.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }
}

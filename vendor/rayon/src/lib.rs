//! Vendored minimal stand-in for `rayon`.
//!
//! Supports `(range | vec).into_par_iter()`, `.par_iter()` over slices and
//! `.par_iter_mut()` over mutable slices, each with `.map(f)` /
//! `.for_each(f)` / `.collect()`, preserving input order in the collected
//! output. Work runs on a lazily-started persistent worker pool (see
//! [`pool`]) instead of spawning threads per call, so fine-grained fan-outs
//! — a few hundred microseconds of work per dispatch, thousands of
//! dispatches per simulated day — pay an atomic claim per chunk rather
//! than a thread spawn. No work stealing — chunks are contiguous and
//! claimed whole, which is fine for the coarse, similar-cost tasks the
//! workspace fans out.

pub mod pool;

/// Number of chunks a fan-out is split into. Like the real crate's default
/// pool, `RAYON_NUM_THREADS` overrides the core count (values that fail to
/// parse, or 0, fall back to the detected parallelism). Read per call, so
/// tests can vary it at runtime; the persistent pool itself is sized once
/// from the detected parallelism and simply leaves chunks unclaimed-by-
/// workers when asked for fewer.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_range!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion: `collection.par_iter()` over `&[T]` without
/// cloning the items (mirrors the real crate's trait of the same name).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Mutably-borrowing conversion: `collection.par_iter_mut()` hands each
/// element out as `&mut T`, in order — what the sharded campaign engine
/// uses to advance per-site scheduling domains concurrently.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;

    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Marker trait so `use rayon::prelude::*` keeps working for generic code.
pub trait ParallelIterator {}

/// A pending parallel pipeline over an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {}

impl<T: Send> ParIter<T> {
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        self.map(|x| f(x)).run();
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel pipeline.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParallelIterator for ParMap<T, F> {}

/// Raw pointer the pool closure may index from several threads at once;
/// chunks are disjoint index ranges, each executed exactly once, so the
/// aliasing is write-disjoint.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// The caller must be the only thread touching index `i`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParMap<T, F> {
    fn run(self) -> Vec<O> {
        let ParMap { items, f } = self;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = current_num_threads().min(n);
        let chunk = n.div_ceil(threads);
        let n_chunks = n.div_ceil(chunk);
        // Wrap inputs/outputs so chunks hand out owned values in order.
        let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
        let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
        {
            let slots_ptr = SendPtr(slots.as_mut_ptr());
            let out_ptr = SendPtr(out.as_mut_ptr());
            let f = &f;
            pool::run_chunks(n_chunks, &|c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(n);
                for i in lo..hi {
                    // Safety: chunk ranges partition 0..n and `run_chunks`
                    // executes each chunk index exactly once, so every slot
                    // is touched by exactly one thread.
                    let slot = unsafe { slots_ptr.slot(i) };
                    let dst = unsafe { out_ptr.slot(i) };
                    let item = slot.take().expect("slot filled above");
                    *dst = Some(f(item));
                }
            });
        }
        out.into_iter()
            .map(|s| s.expect("all chunks completed"))
            .collect()
    }

    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.run().into_iter().collect()
    }

    pub fn for_each<G: Fn(O) + Sync>(self, g: G) {
        for v in self.run() {
            g(v);
        }
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = (0u64..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn slice_par_iter_borrows_in_order() {
        let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let out: Vec<usize> = items.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_updates_every_element() {
        let mut items: Vec<u64> = (0..257).collect();
        items.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(items, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_dispatch_completes() {
        // A parallel map whose tasks themselves dispatch parallel maps: the
        // dispatcher participates in its own batch, so inner fan-outs make
        // progress even with every worker blocked on an outer task.
        let out: Vec<u64> = (0u64..16)
            .into_par_iter()
            .map(|i| (0u64..64).into_par_iter().map(|j| i * j).collect::<Vec<_>>().iter().sum())
            .collect();
        let want: Vec<u64> = (0u64..16).map(|i| i * (0u64..64).sum::<u64>()).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn panics_propagate_to_the_dispatcher() {
        let r = std::panic::catch_unwind(|| {
            (0u64..64).into_par_iter().for_each(|i| {
                if i == 33 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err(), "worker panic must reach the dispatcher");
        // The pool survives a panicked batch.
        let out: Vec<u64> = (0u64..64).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn honors_rayon_num_threads_at_one() {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 7).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (0u64..100).map(|x| x * 7).collect::<Vec<_>>());
    }
}

//! Vendored minimal stand-in for `serde_derive`.
//!
//! Hand-rolled over `proc_macro` token trees (no `syn`/`quote` available in
//! this environment). Supports the shapes the workspace actually derives:
//!
//! - structs with named fields (honouring `#[serde(skip)]`)
//! - tuple structs (newtype = transparent, like real serde)
//! - unit structs
//! - enums with unit / tuple / struct variants, externally tagged
//!   (`"Variant"`, `{"Variant": payload}`) like real serde's default
//!
//! Generics and every serde attribute other than `skip` are unsupported
//! and produce a `compile_error!` so the gap is loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Named { name: String, fields: Vec<Field> },
    Tuple { name: String, arity: usize },
    Unit { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Inspect an attribute body (the tokens inside `#[...]`). Returns
/// `Ok(true)` for `serde(skip)`, `Ok(false)` for non-serde attributes, and
/// `Err` for any other serde attribute — this stand-in supports only
/// `skip`, and silently ignoring `rename`/`default`/... would diverge from
/// real serde at runtime.
fn classify_attr(group: &TokenStream) -> Result<bool, String> {
    let mut it = group.clone().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(false),
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => {
            let args: Vec<String> = inner.stream().into_iter().map(|t| t.to_string()).collect();
            if args.len() == 1 && args[0] == "skip" {
                Ok(true)
            } else {
                Err(format!(
                    "vendored serde_derive supports only #[serde(skip)], found #[serde({})]",
                    args.join("")
                ))
            }
        }
        _ => Err("vendored serde_derive supports only #[serde(skip)]".to_string()),
    }
}

/// Consume leading attributes from `toks[*i..]`, returning whether any was
/// `#[serde(skip)]`. Unsupported serde attributes are an error.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> Result<bool, String> {
    let mut skip = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        if classify_attr(&g.stream())? {
                            skip = true;
                        }
                        *i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    Ok(skip)
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip type tokens until a top-level comma (tracking `<`/`>` depth; other
/// bracket kinds arrive pre-grouped in the token tree). The `->` of fn
/// types is skipped as a pair so its `>` doesn't count as a closer. Leaves
/// `*i` *after* the comma, or at end of input.
fn eat_type_and_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '-' => {
                if let Some(TokenTree::Punct(next)) = toks.get(*i + 1) {
                    if next.as_char() == '>' {
                        *i += 2;
                        continue;
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i)?;
        if i >= toks.len() {
            break;
        }
        eat_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found `{other}`")),
        }
        eat_type_and_comma(&toks, &mut i);
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Count the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> Result<usize, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return Ok(0);
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        eat_attrs(&toks, &mut i)?;
        if i >= toks.len() {
            break;
        }
        eat_vis(&toks, &mut i);
        eat_type_and_comma(&toks, &mut i);
        n += 1;
    }
    Ok(n)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&toks, &mut i)?;
    eat_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generics (type `{name}`)"
            ));
        }
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Named {
                name,
                fields: parse_named_fields(g.stream())?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Input::Tuple {
                    name,
                    arity: count_tuple_fields(g.stream())?,
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::Unit { name }),
            other => Err(format!("unsupported struct body: `{other:?}`")),
        },
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found `{other:?}`")),
            };
            let vtoks: Vec<TokenTree> = body.into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < vtoks.len() {
                eat_attrs(&vtoks, &mut j)?;
                if j >= vtoks.len() {
                    break;
                }
                let vname = match &vtoks[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("expected variant name, found `{other}`")),
                };
                j += 1;
                let kind = match vtoks.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        VariantKind::Tuple(count_tuple_fields(g.stream())?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        VariantKind::Struct(parse_named_fields(g.stream())?)
                    }
                    _ => VariantKind::Unit,
                };
                // Explicit discriminants (`= expr`) are not supported.
                if let Some(TokenTree::Punct(p)) = vtoks.get(j) {
                    if p.as_char() == '=' {
                        return Err(format!(
                            "vendored serde_derive does not support explicit discriminants \
                             (variant `{vname}`)"
                        ));
                    }
                }
                if let Some(TokenTree::Punct(p)) = vtoks.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
                variants.push(Variant { name: vname, kind });
            }
            Ok(Input::Enum { name, variants })
        }
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Named { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =
                            ::std::vec::Vec::new();
                        {pushes}
                        ::serde::Value::Object(__m)
                    }}
                }}"
            )
        }
        Input::Tuple { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{ {body} }}
                }}"
            )
        }
        Input::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}
            }}"
        ),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        // Bind only serialized fields; `..` swallows skipped
                        // ones so they don't trip unused_variables.
                        let mut binds: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.clone())
                            .collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|n| {
                                format!(
                                    "({n:?}.to_string(), ::serde::Serialize::to_value({n}))"
                                )
                            })
                            .collect();
                        if fields.iter().any(|f| f.skip) {
                            binds.push("..".to_string());
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Named { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{}: ::serde::Deserialize::from_value(::serde::get_field(__v, {:?})?)?,\n",
                        f.name, f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value)
                        -> ::std::result::Result<Self, ::serde::Error> {{
                        ::std::result::Result::Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Input::Tuple { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                    .collect();
                format!(
                    "let __a = __v.as_array().ok_or_else(|| ::serde::Error::new(
                         format!(\"expected array for `{name}`, got {{}}\", __v.kind())))?;
                     if __a.len() != {arity} {{
                         return ::std::result::Result::Err(::serde::Error::new(
                             format!(\"expected {arity} elements for `{name}`, got {{}}\", __a.len())));
                     }}
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value)
                        -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}
                }}"
            )
        }
        Input::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(_: &::serde::Value)
                    -> ::std::result::Result<Self, ::serde::Error> {{
                    ::std::result::Result::Ok({name})
                }}
            }}"
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the externally-tagged object form.
                        payload_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__p)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                                .collect();
                            format!(
                                "{{ let __a = __p.as_array().ok_or_else(|| ::serde::Error::new(
                                     format!(\"expected array payload for `{name}::{vn}`\")))?;
                                 if __a.len() != {arity} {{
                                     return ::std::result::Result::Err(::serde::Error::new(
                                         format!(\"expected {arity} elements for `{name}::{vn}`\")));
                                 }}
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("{vn:?} => {body},\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{}: ::serde::Deserialize::from_value(\
                                     ::serde::get_field(__p, {:?})?)?,\n",
                                    f.name, f.name
                                ));
                            }
                        }
                        payload_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value)
                        -> ::std::result::Result<Self, ::serde::Error> {{
                        match __v {{
                            ::serde::Value::String(__s) => match __s.as_str() {{
                                {unit_arms}
                                __other => ::std::result::Result::Err(::serde::Error::new(
                                    format!(\"unknown variant `{{__other}}` for `{name}`\"))),
                            }},
                            ::serde::Value::Object(__o) if __o.len() == 1 => {{
                                let (__k, __p) = &__o[0];
                                let _ = __p; // unused when every variant is unit-like
                                match __k.as_str() {{
                                    {payload_arms}
                                    __other => ::std::result::Result::Err(::serde::Error::new(
                                        format!(\"unknown variant `{{__other}}` for `{name}`\"))),
                                }}
                            }}
                            __other => ::std::result::Result::Err(::serde::Error::new(
                                format!(\"expected enum value for `{name}`, got {{}}\",
                                        __other.kind()))),
                        }}
                    }}
                }}"
            )
        }
    }
}

// For unit variants deserialized from the object form, `__p` is unused; the
// generated arm ignores it by construction (no `__p` reference).

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

//! Vendored minimal stand-in for `rand_chacha`: ChaCha-based RNGs with the
//! real ChaCha block function (RFC 8439 quarter-round), emitting the
//! keystream as 64-bit words.

use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr) => {
        /// ChaCha keystream RNG with a fixed round count.
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            /// Next unread index into `buf`; 16 means exhausted.
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut state = [0u32; 16];
                state[0] = 0x6170_7865;
                state[1] = 0x3320_646e;
                state[2] = 0x7962_2d32;
                state[3] = 0x6b20_6574;
                state[4..12].copy_from_slice(&self.key);
                state[12] = self.counter as u32;
                state[13] = (self.counter >> 32) as u32;
                state[14] = 0;
                state[15] = 0;
                let mut w = state;
                for _ in 0..($rounds / 2) {
                    // Column rounds.
                    quarter(&mut w, 0, 4, 8, 12);
                    quarter(&mut w, 1, 5, 9, 13);
                    quarter(&mut w, 2, 6, 10, 14);
                    quarter(&mut w, 3, 7, 11, 15);
                    // Diagonal rounds.
                    quarter(&mut w, 0, 5, 10, 15);
                    quarter(&mut w, 1, 6, 11, 12);
                    quarter(&mut w, 2, 7, 8, 13);
                    quarter(&mut w, 3, 4, 9, 14);
                }
                for i in 0..16 {
                    self.buf[i] = w[i].wrapping_add(state[i]);
                }
                self.counter = self.counter.wrapping_add(1);
                self.idx = 0;
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                if self.idx + 2 > 16 {
                    self.refill();
                }
                let lo = self.buf[self.idx] as u64;
                let hi = self.buf[self.idx + 1] as u64;
                self.idx += 2;
                lo | (hi << 32)
            }

            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let v = self.buf[self.idx];
                self.idx += 1;
                v
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks(4).enumerate() {
                    key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name {
                    key,
                    counter: 0,
                    buf: [0; 16],
                    idx: 16,
                }
            }
        }
    };
}

fn quarter(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(16);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(12);
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(8);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(7);
}

chacha_rng!(ChaCha8Rng, 8);
chacha_rng!(ChaCha12Rng, 12);
chacha_rng!(ChaCha20Rng, 20);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn usable_via_rng_trait() {
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let v: u64 = rng.gen_range(0..10);
        assert!(v < 10);
    }
}

//! Vendored minimal stand-in for `rand` 0.8.
//!
//! Provides exactly the API surface the workspace uses — `rngs::SmallRng`
//! (xoshiro256++, the same algorithm real rand 0.8 uses on 64-bit targets),
//! `Rng::{gen, gen_range, gen_bool, fill}`, `SeedableRng::{from_seed,
//! seed_from_u64}`, and `seq::SliceRandom::{choose, shuffle}` — with the
//! same call-site syntax, so swapping the real crate back in requires no
//! source changes.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, matching rand's `seed_from_u64` approach.
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Values producible "uniformly" by `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::sample_standard(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::sample_standard(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Unit draw over [0, 1] *inclusive* (unlike the half-open
                // `Range` impl), so `hi` itself is reachable — callers use
                // `lo..=hi` precisely when the documented bound must be.
                lo + <$t>::sample_unit_inclusive(rng) * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Float helpers for inclusive-range sampling.
trait UnitInclusive {
    /// A uniform draw over `[0, 1]` with both endpoints reachable.
    fn sample_unit_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UnitInclusive for f64 {
    fn sample_unit_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}

impl UnitInclusive for f32 {
    fn sample_unit_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / ((1u32 << 24) - 1) as f32)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample_standard(self) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind real rand 0.8's `SmallRng` on
    /// 64-bit platforms. Fast, small state, good statistical quality.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state would be a fixed point; perturb like rand does.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0xcbf2_9ce4_8422_2325,
                ];
            }
            SmallRng { s }
        }
    }

    /// Alias so `StdRng`-typed code compiles; same deterministic,
    /// explicitly-seeded generator as `SmallRng` (no entropy source here).
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::Rng;

    /// Slice extensions: random element choice and Fisher–Yates shuffle.
    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn choose_mut<R: Rng>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn choose_mut<R: Rng>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&mut self[i])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    /// An `RngCore` pinned to one output word, for endpoint tests.
    struct ConstRng(u64);
    impl crate::RngCore for ConstRng {
        fn next_u64(&mut self) -> u64 {
            self.0
        }
    }

    #[test]
    fn inclusive_float_range_reaches_both_endpoints() {
        use crate::Rng;
        // All-ones mantissa draw maps to exactly 1.0 under the inclusive
        // unit sampler, so `gen_range(lo..=hi)` can return `hi` itself —
        // the property the half-open impl (by design) lacks.
        let hi: f64 = ConstRng(u64::MAX).gen_range(0.25..=0.75);
        assert_eq!(hi, 0.75);
        let lo: f64 = ConstRng(0).gen_range(0.25..=0.75);
        assert_eq!(lo, 0.25);
        let hi32: f32 = ConstRng(u64::MAX).gen_range(1.0f32..=3.0);
        assert_eq!(hi32, 3.0);
        // And the draw stays inside the band for arbitrary words.
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}

//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), the
//! [`Strategy`] trait over ranges / tuples / `prop_map`,
//! `prop::collection::vec`, `prop::option::of`, [`Just`], and panic-based
//! `prop_assert*` macros.
//!
//! Divergences from real proptest, by design: no shrinking of failing
//! cases, and a fixed deterministic seed schedule — case `i` of test `t`
//! uses `splitmix(fnv1a(t) ^ i)`, so failures reproduce exactly across
//! runs and machines.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a hash used to derive per-test seeds from the test name.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case as u64
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps tier-1 fast while still
        // exercising plenty of the input space (seeds are deterministic).
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe producing values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy (`Rc` so it stays cheaply cloneable).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Widen so full-domain ranges (`T::MIN..=T::MAX`) don't
                // overflow the span arithmetic.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Size specification for collection strategies.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            pub min: usize,
            /// Exclusive upper bound.
            pub max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(strategy, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min).max(1) as u64;
                let len = self.size.min + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use crate::{Strategy, TestRng};

        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `prop::option::of(strategy)`: `None` one time in four.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() % 4 == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything the `use proptest::prelude::*;` idiom expects.
pub mod prelude {
    pub use crate::{prop, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Panic-based stand-ins for proptest's result-based assertions. Without
/// shrinking there is no machinery to thread `Err` through, and the panic
/// message (with the deterministic case seed printed by the runner) is
/// enough to reproduce.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// The test-defining macro. Each contained function runs `config.cases`
/// deterministic cases; the binding list `pat in strategy, ...` draws one
/// value per strategy per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let __seed = $crate::seed_for(stringify!($name), __case);
                    let mut __rng = $crate::TestRng::deterministic(__seed);
                    let __run = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                            $body
                        }),
                    );
                    if let ::std::result::Result::Err(__e) = __run {
                        eprintln!(
                            "proptest case failed: test `{}`, case {}/{} (seed {:#x})",
                            stringify!($name), __case, __cfg.cases, __seed,
                        );
                        ::std::panic::resume_unwind(__e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -5i64..=5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn vec_len_in_bounds(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn mapped_tuples(p in (0u32..10, 0u32..10).prop_map(|(x, y)| x + y)) {
            prop_assert!(p < 19);
        }

        #[test]
        fn options_mix(o in prop::option::of(1u8..4)) {
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut rng = crate::TestRng::deterministic(1);
        for _ in 0..64 {
            let _: i64 = (i64::MIN..=i64::MAX).generate(&mut rng);
            let _: u64 = (0u64..=u64::MAX).generate(&mut rng);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic(crate::seed_for("t", 0));
        let mut b = crate::TestRng::deterministic(crate::seed_for("t", 0));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Vendored minimal stand-in for `serde_json`: real JSON text rendering and
//! parsing over the vendored `serde` crate's [`Value`] tree.

pub use serde::{Error, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn write_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{:?}` on f64 is the shortest representation that round-trips.
        let s = format!("{n:?}");
        out.push_str(&s);
    } else {
        // JSON has no NaN/inf; real serde_json emits null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::new(format!(
                "expected `{}`, found end of input",
                b as char
            ))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("bad surrogate pair"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| Error::new("bad surrogate pair"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| Error::new("bad \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::new("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 from the source slice.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("truncated \\u"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("bad hex digit"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "0", "-7", "3.25", "\"hi\\n\""] {
            let v = parse(src).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, src);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a":[1,2,{"b":"x"}],"c":null}"#;
        let v = parse(src).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, src);
    }

    #[test]
    fn big_u64_survives() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Value::U64(u64::MAX));
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
        // High surrogate followed by a non-low-surrogate must error, not panic.
        assert!(parse(r#""\ud800A""#).is_err());
        assert!(parse(r#""\ud800""#).is_err());
    }
}

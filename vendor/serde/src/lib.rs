//! Vendored minimal stand-in for `serde`.
//!
//! Real serde abstracts over serializers with a visitor architecture; this
//! stand-in uses a concrete JSON-like [`Value`] tree, which is all the
//! workspace needs (every use is a `serde_json` round-trip). The derive
//! macros in `serde_derive` generate `to_value` / `from_value` impls that
//! follow serde's *externally tagged* enum convention, so swapping in the
//! real crates later keeps the wire format recognisable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A JSON-like value tree: the data model of this serde stand-in.
///
/// Objects preserve insertion order (plain `Vec` of pairs) so output is
/// deterministic without sorting.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integer (covers every `iN` and any `uN` value `<= i64::MAX`).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a field in an object value; used by derived impls.
pub fn get_field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
    let obj = v
        .as_object()
        .ok_or_else(|| Error::new(format!("expected object, got {}", v.kind())))?;
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, fv)| fv)
        .ok_or_else(|| Error::new(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!("expected integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u128;
                if n <= i64::MAX as u128 { Value::I64(n as i64) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!("expected integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::new(format!("expected number, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::new(format!("expected string, got {}", v.kind())))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort rendered elements for deterministic output.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array()
                    .ok_or_else(|| Error::new(format!("expected array, got {}", v.kind())))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(Error::new(format!(
                        "expected {expected}-tuple, got {} elements", a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Maps — JSON object keys must be strings, so keys go through `JsonKey`.
// ---------------------------------------------------------------------------

/// Map keys renderable as (and parseable from) JSON object-key strings.
///
/// Blanket-implemented for everything that serializes to a string, integer,
/// or bool — mirroring real serde_json's `MapKeySerializer`, which also
/// accepts integer and newtype keys by stringifying them.
pub trait JsonKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl<T: Serialize + Deserialize> JsonKey for T {
    fn to_key(&self) -> String {
        match self.to_value() {
            Value::String(s) => s,
            Value::I64(n) => n.to_string(),
            Value::U64(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("map key must serialize to string/integer, got {}", other.kind()),
        }
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        if let Ok(v) = T::from_value(&Value::String(s.to_string())) {
            return Ok(v);
        }
        if let Ok(n) = s.parse::<i64>() {
            if let Ok(v) = T::from_value(&Value::I64(n)) {
                return Ok(v);
            }
        }
        if let Ok(n) = s.parse::<u64>() {
            if let Ok(v) = T::from_value(&Value::U64(n)) {
                return Ok(v);
            }
        }
        if let Ok(b) = s.parse::<bool>() {
            if let Ok(v) = T::from_value(&Value::Bool(b)) {
                return Ok(v);
            }
        }
        Err(Error::new(format!("cannot parse map key `{s}`")))
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, fv)| Ok((K::from_key(k)?, V::from_value(fv)?)))
            .collect()
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort by rendered key for deterministic output.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, fv)| Ok((K::from_key(k)?, V::from_value(fv)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

//! Vendored minimal stand-in for `criterion` 0.5.
//!
//! Same call-site API (`bench_function`, `benchmark_group`,
//! `bench_with_input`, `iter`, `iter_batched`, `BatchSize`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` with `harness = false`), but the
//! measurement loop is simple: warm up briefly, then time a few batches and
//! print the median ns/iter to stdout. No statistics engine, history, or
//! HTML reports — those return when the real crate is swapped back in.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; accepted and ignored (every
/// batch re-runs setup outside the timed section regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Names acceptable wherever criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    /// Measured median duration of one iteration, in nanoseconds.
    measured_ns: f64,
    /// Iterations per measured batch.
    batch_iters: u64,
    /// Measured batches (median taken over these).
    batches: usize,
}

impl Bencher {
    fn new(batch_iters: u64, batches: usize) -> Self {
        Bencher {
            measured_ns: f64::NAN,
            batch_iters,
            batches,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        for _ in 0..self.batch_iters.min(16) {
            black_box(routine());
        }
        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.batch_iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / self.batch_iters as f64);
        }
        self.measured_ns = median(&mut samples);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let mut total = Duration::ZERO;
            for _ in 0..self.batch_iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            samples.push(total.as_nanos() as f64 / self.batch_iters as f64);
        }
        self.measured_ns = median(&mut samples);
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        let mut samples = Vec::with_capacity(self.batches);
        for _ in 0..self.batches {
            let mut total = Duration::ZERO;
            for _ in 0..self.batch_iters {
                let mut input = setup();
                let start = Instant::now();
                black_box(routine(&mut input));
                total += start.elapsed();
            }
            samples.push(total.as_nanos() as f64 / self.batch_iters as f64);
        }
        self.measured_ns = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Machine-readable output: when `BENCH_JSON` names a file, merge this
/// measurement into it as a flat `{"<bench id>": <median ns>}` object.
/// Bench binaries run as separate processes, so the file is re-read and
/// re-written per measurement; ids never contain quotes or backslashes.
fn record_json(id: &str, median_ns: f64) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut entries: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some(rest) = line.strip_prefix('"') else {
                continue;
            };
            let Some((key, value)) = rest.split_once("\": ") else {
                continue;
            };
            if let Ok(v) = value.trim().parse::<f64>() {
                entries.insert(key.to_string(), v);
            }
        }
    }
    entries.insert(id.to_string(), median_ns);
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("  \"{k}\": {v:.1}{comma}\n"));
    }
    out.push_str("}\n");
    let _ = std::fs::write(&path, out);
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    batch_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 11,
            batch_iters: 3,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn configure_from_args(mut self) -> Self {
        // `cargo bench -- <filter>` filtering is not implemented.
        if std::env::args().any(|a| a == "--quick") {
            self.sample_size = 3;
            self.batch_iters = 1;
        }
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let samples = self.sample_size;
        self.run_with(id, f, samples);
    }

    fn run_with<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F, samples: usize) {
        let mut b = Bencher::new(self.batch_iters, samples);
        f(&mut b);
        if b.measured_ns.is_nan() {
            println!("{id:<50} (no measurement)");
        } else {
            println!("{id:<50} time: [{}]", human_ns(b.measured_ns));
            record_json(id, b.measured_ns);
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_id();
        self.run_one(&id, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        self.run_one(&id, |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks. Configuration set on the group
/// stays scoped to it (as in real criterion) — it never leaks into the
/// parent `Criterion`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Group-local override of the parent's sample size.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(3));
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        let samples = self.samples();
        self.criterion.run_with(&id, f, samples);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        let samples = self.samples();
        self.criterion.run_with(&id, |b| f(b, input), samples);
        self
    }

    pub fn finish(self) {}
}

/// Define a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! The paper's proposed extension (slide 23): "Adding real user
//! experiments as regression tests?" — implemented.
//!
//! Three published "experiments" are captured with their result envelopes.
//! Months later the testbed has silently drifted; re-running the captured
//! experiments answers the reproducibility question directly.
//!
//! Run with: `cargo run --release --example regression_suite`

use throughout::kadeploy::{standard_images, Deployer};
use throughout::kavlan::KavlanManager;
use throughout::kwapi::MetricStore;
use throughout::oar::OarServer;
use throughout::refapi::RefApi;
use throughout::sim::rng::stream_rng;
use throughout::sim::{SimDuration, SimTime};
use throughout::suite::{Metric, RegressionExperiment, TestCtx};
use throughout::testbed::{FaultKind, FaultTarget, TestbedBuilder};

fn main() {
    let mut tb = TestbedBuilder::paper_scale().build();
    let mut refapi = RefApi::new();
    refapi.publish_from(&tb, SimTime::ZERO);
    let oar = OarServer::new(&tb, refapi.latest().unwrap());
    let mut kavlan = KavlanManager::new();
    let mut kwapi = MetricStore::new(tb.nodes().len(), 600, SimDuration::from_mins(1));
    let deployer = Deployer::default();
    let images = standard_images();
    let mut rng = stream_rng(7, "regression");

    let mut experiments = vec![
        RegressionExperiment {
            id: "europar15-fig4 (MPI kernel scaling)".into(),
            cluster: "grisou".into(),
            metric: Metric::CpuThroughput,
            baseline: 0.0,
            tolerance: 0.01,
        },
        RegressionExperiment {
            id: "ccgrid16-tab2 (checkpoint write path)".into(),
            cluster: "paravance".into(),
            metric: Metric::DiskWriteBandwidth,
            baseline: 0.0,
            tolerance: 0.05,
        },
        RegressionExperiment {
            id: "sc14-fig7 (all-to-all shuffle)".into(),
            cluster: "econome".into(),
            metric: Metric::NetworkBandwidth,
            baseline: 0.0,
            tolerance: 0.05,
        },
    ];

    // Day 0: capture baselines on the pristine testbed.
    for exp in &mut experiments {
        let assigned = tb.cluster_by_name(&exp.cluster).unwrap().nodes.clone();
        let ctx = TestCtx {
            tb: &mut tb,
            refapi: &refapi,
            oar: &oar,
            kavlan: &mut kavlan,
            kwapi: &mut kwapi,
            deployer: &deployer,
            images: &images,
            assigned: &assigned,
            now: SimTime::ZERO,
            rng: &mut rng,
        };
        exp.capture_baseline(&ctx);
        println!("captured  {:<42} baseline {:.1}", exp.id, exp.baseline);
    }

    // Months pass; maintenance quietly drifts two clusters.
    let grisou = tb.cluster_by_name("grisou").unwrap().nodes.clone();
    tb.apply_fault(FaultKind::CpuCStatesDrift, FaultTarget::Node(grisou[3]), SimTime::from_days(60))
        .unwrap();
    let paravance = tb.cluster_by_name("paravance").unwrap().nodes.clone();
    tb.apply_fault(
        FaultKind::DiskWriteCacheDrift,
        FaultTarget::Node(paravance[7]),
        SimTime::from_days(75),
    )
    .unwrap();

    // Day 90: the regression suite re-runs every captured experiment.
    println!("\nre-running captured experiments at day 90:");
    let mut failures = 0;
    for exp in &experiments {
        let assigned = tb.cluster_by_name(&exp.cluster).unwrap().nodes.clone();
        let mut ctx = TestCtx {
            tb: &mut tb,
            refapi: &refapi,
            oar: &oar,
            kavlan: &mut kavlan,
            kwapi: &mut kwapi,
            deployer: &deployer,
            images: &images,
            assigned: &assigned,
            now: SimTime::from_days(90),
            rng: &mut rng,
        };
        let report = exp.run(&mut ctx);
        if report.passed() {
            println!("  PASS  {}", exp.id);
        } else {
            failures += 1;
            for d in &report.diagnostics {
                println!("  FAIL  {}", d.message);
            }
        }
    }
    assert_eq!(failures, 2, "the two drifted clusters must fail");
    println!("\n2/3 published results no longer reproduce — and the suite says where and why.");
}

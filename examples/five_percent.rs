//! Experiment E10 (slide 13): "5% decrease in performance → wrong results
//! → wrong conclusions → retracted paper?"
//!
//! A researcher benchmarks two algorithm variants on two "identical" nodes
//! of the same cluster. One node silently has deep C-states enabled (a
//! real Grid'5000 bug). The variant assigned to the degraded node loses
//! the comparison even though it is actually faster — and the testing
//! framework's `refapi` sweep is what catches the drift before the paper
//! ships.
//!
//! Run with: `cargo run --release --example five_percent`

use throughout::nodecheck::check_node;
use throughout::refapi::describe;
use throughout::sim::SimTime;
use throughout::testbed::{perf, FaultKind, FaultTarget, TestbedBuilder};

fn main() {
    let mut tb = TestbedBuilder::paper_scale().build();
    let desc = describe(&tb, 1, SimTime::ZERO);
    let grisou = tb.cluster_by_name("grisou").unwrap();
    let (node_a, node_b) = (grisou.nodes[0], grisou.nodes[1]);

    // Ground truth: variant B is 3 % faster than variant A.
    let speedup_b = 1.03;

    // The silent bug: node B has C-states enabled (reference disables them).
    tb.apply_fault(FaultKind::CpuCStatesDrift, FaultTarget::Node(node_b), SimTime::ZERO)
        .unwrap();

    let throughput = |n| perf::cpu_throughput(&tb.node(n).hardware.cpu);
    let score_a = throughput(node_a) * 1.0; // variant A on node A
    let score_b = throughput(node_b) * speedup_b; // variant B on node B

    println!("ground truth : variant B is {:.0}% faster", (speedup_b - 1.0) * 100.0);
    println!(
        "node A ({}) : variant A scores {:.2}",
        tb.node(node_a).name,
        score_a
    );
    println!(
        "node B ({}) : variant B scores {:.2}  <- degraded node (-3% from C-states)",
        tb.node(node_b).name,
        score_b
    );
    let measured_verdict = if score_b > score_a { "B wins" } else { "A wins" };
    println!("measured verdict : {measured_verdict}   (true verdict: B wins)");
    assert!(score_b < score_a, "the degraded node flips the conclusion");

    // The framework's description check catches the drift.
    let report = check_node(&tb, &desc, node_b);
    assert!(!report.passed());
    println!("\nwhat the testing framework reports before the paper ships:");
    for m in &report.mismatches {
        println!("  {}: {}", report.node, m);
    }
    println!("\nconclusion: a ~3% silent setting drift reverses an A/B comparison;");
    println!("systematic description testing (refapi family) flags it first.");
}

//! Experiments E8 and E9 (slides 22–23): the longitudinal campaign.
//!
//! Runs the paper scenario — six months on the paper-scale testbed, staged
//! test rollout, calibrated fault arrivals and operator capacity — and
//! prints:
//!
//! * bugs filed/fixed over time (paper: "118 bugs filed (inc. 84 already
//!   fixed)" at submission time);
//! * the monthly test success rate (paper: "85 % of tests successful in
//!   February → 93 % today, despite the addition of new tests").
//!
//! Run with: `cargo run --release --example longitudinal [seed]`

use throughout::core::scenario::paper_scenario;
use throughout::core::Campaign;
use throughout::sim::SimTime;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2017);
    let mut campaign = Campaign::new(paper_scenario(seed));
    println!("running the 180-day paper scenario (seed {seed})...");

    for month in 1..=6 {
        campaign.run_until(SimTime::from_days(30 * month));
        let filed = campaign.tracker().filed();
        let fixed = campaign.tracker().fixed();
        println!(
            "  month {month}: {filed:>4} bugs filed, {fixed:>4} fixed, {} tests run",
            campaign.metrics().tests_run
        );
    }
    // Flush final metrics.
    campaign.run_until(SimTime::from_days(180));

    let m = campaign.metrics();
    println!("\n== E9: monthly success rate (paper: 85% Feb -> 93% Jun) ==");
    for (month, pct) in m.monthly_success_percent() {
        // The boundary tick at day 180 leaves a token month-7 bucket.
        if m.monthly_success.periods()[month].count() < 100 {
            continue;
        }
        println!("  month {:>2}: {:>5.1}%  {}", month + 1, pct, bar(pct));
    }

    let filed = campaign.tracker().filed();
    let fixed = campaign.tracker().fixed();
    println!("\n== E8: bug volume (paper: 118 filed, 84 fixed) ==");
    println!("  filed: {filed}");
    println!("  fixed: {fixed}");
    println!("  open : {}", campaign.tracker().open().len());

    println!("\n== scheduler decisions ==");
    let s = &campaign.scheduler().stats;
    println!("  triggered            : {}", s.triggered);
    println!("  deferred (resources) : {}", s.deferred_resources);
    println!("  deferred (peak hours): {}", s.deferred_peak);
    println!("  deferred (same site) : {}", s.deferred_site);
    println!("  cancelled→unstable   : {}", s.cancelled_not_immediate);

    println!("\n== per-family completions ==");
    for (family, n) in &m.completions_per_family {
        println!("  {family:<15} {n:>6}");
    }

    println!("\n== load ==");
    println!(
        "  CI executors busy (mean): {:.1}%",
        m.executor_busy.mean() * 100.0
    );
    println!(
        "  OAR utilization (mean)  : {:.1}%",
        m.oar_utilization.mean() * 100.0
    );
    println!(
        "  user job waiting (mean) : {:.2} h",
        m.user_wait_hours.mean()
    );
}

fn bar(pct: f64) -> String {
    let n = (pct / 2.0).round() as usize;
    "#".repeat(n.min(50))
}

//! Ablation: per-node conformity checks (g5k-checks alone) vs. the full
//! test-family suite.
//!
//! The paper's central argument for a *framework* rather than a node
//! checker: many real bug classes are behavioural — dead consoles, stuck
//! VLAN ports, mis-wired wattmeters, flaky services, spontaneous reboots —
//! and invisible to hardware probes. This example injects one fault of
//! every class and reports which detector sees it.
//!
//! Run with: `cargo run --release --example ablation_coverage`

use rand::rngs::SmallRng;
use throughout::kadeploy::{standard_images, Deployer};
use throughout::kavlan::KavlanManager;
use throughout::kwapi::MetricStore;
use throughout::nodecheck::check_node;
use throughout::oar::OarServer;
use throughout::refapi::RefApi;
use throughout::sim::rng::stream_rng;
use throughout::sim::{SimDuration, SimTime};
use throughout::suite::{run_test, Family, Target, TestConfig, TestCtx};
use throughout::testbed::{FaultKind, FaultTarget, NodeId, ServiceKind, Testbed, TestbedBuilder};

/// The family that owns detection of each class, per DESIGN.md.
fn owning_family(kind: FaultKind) -> (Family, Target) {
    use FaultKind::*;
    let cluster = |f| (f, Target::Cluster("alpha".into()));
    let beta = |f| (f, Target::Cluster("beta".into()));
    let site = |f| (f, Target::Site("east".into()));
    match kind {
        DiskWriteCacheDrift | DiskFirmwareDrift => cluster(Family::Disk),
        CpuCStatesDrift | HyperthreadingDrift | TurboDrift => cluster(Family::Refapi),
        BiosVersionDrift => cluster(Family::DellBios),
        DimmFailure => cluster(Family::OarProperties),
        NicDowngrade => beta(Family::OarProperties),
        CablingSwap => site(Family::Kwapi),
        KernelBootRace | RandomReboots => cluster(Family::MultiReboot),
        OfedFlaky => cluster(Family::MpiGraph),
        ConsoleDead => cluster(Family::Console),
        VlanPortStuck => site(Family::Kavlan),
        ServiceFlaky | ServiceDown => site(Family::Cmdline),
        // Killed processes and degraded RPC links surface on the same
        // command-line probes as flaky services do.
        ServiceCrash | ServiceRestart | RpcDegraded => site(Family::Cmdline),
        NodeDead | SitePowerOutage => site(Family::OarState),
        ClockSkew => site(Family::Cmdline),
        SiteLinkPartition => (Family::Kavlan, Target::Global),
    }
}

struct World {
    tb: Testbed,
    refapi: RefApi,
    oar: OarServer,
    kavlan: KavlanManager,
    kwapi: MetricStore,
    deployer: Deployer,
    images: Vec<throughout::kadeploy::Environment>,
    rng: SmallRng,
}

fn world(seed: u64) -> World {
    let tb = TestbedBuilder::small().build();
    let mut refapi = RefApi::new();
    refapi.publish_from(&tb, SimTime::ZERO);
    let oar = OarServer::new(&tb, refapi.latest().unwrap());
    let kwapi = MetricStore::new(tb.nodes().len(), 600, SimDuration::from_mins(1));
    World {
        oar,
        kwapi,
        tb,
        refapi,
        kavlan: KavlanManager::new(),
        deployer: Deployer::default(),
        images: standard_images(),
        rng: stream_rng(seed, "ablation"),
    }
}

fn main() {
    println!("{:<20} {:>16} {:>22}", "fault class", "g5k-checks only", "owning test family");
    println!("{}", "-".repeat(60));
    let mut checks_only = 0;
    let mut full = 0;
    for kind in FaultKind::ALL {
        let mut w = world(kind as u64 + 100);
        let (family, target) = owning_family(kind);
        let cluster_name = match &target {
            Target::Cluster(c) => c.clone(),
            _ => "alpha".into(),
        };
        let nodes = w.tb.cluster_by_name(&cluster_name).unwrap().nodes.clone();
        let fault_target = match kind {
            FaultKind::CablingSwap => FaultTarget::NodePair(nodes[0], nodes[1]),
            FaultKind::ServiceFlaky
            | FaultKind::ServiceDown
            | FaultKind::ServiceCrash
            | FaultKind::ServiceRestart => {
                FaultTarget::Service(w.tb.sites()[0].id, ServiceKind::KadeployServer)
            }
            FaultKind::SitePowerOutage | FaultKind::ClockSkew | FaultKind::RpcDegraded => {
                FaultTarget::Site(w.tb.sites()[0].id)
            }
            FaultKind::SiteLinkPartition => {
                FaultTarget::SiteLink(w.tb.sites()[0].id, w.tb.sites()[1].id)
            }
            _ => FaultTarget::Node(nodes[0]),
        };
        if w.tb.apply_fault(kind, fault_target, SimTime::ZERO).is_none() {
            println!("{:<20} {:>16} {:>22}", kind.to_string(), "n/a", "n/a");
            continue;
        }

        // Detector 1: g5k-checks sweep over the cluster.
        let desc = w.refapi.latest().unwrap().clone();
        let by_checks = nodes
            .iter()
            .any(|&n| !check_node(&w.tb, &desc, n).passed());

        // Detector 2: the owning family, up to 50 runs for the
        // probabilistic ones.
        let cfg = TestConfig { family, target };
        let assigned: Vec<NodeId> = if cfg.family.hardware_centric() {
            nodes.clone()
        } else if matches!(cfg.target, Target::Global) {
            let remote = w.tb.sites()[1].clusters[0];
            vec![nodes[0], w.tb.cluster(remote).nodes[0]]
        } else if matches!(cfg.target, Target::Site(_)) {
            vec![nodes[0], nodes[2 % nodes.len()]]
        } else {
            vec![nodes[0]]
        };
        let mut by_family = false;
        for _ in 0..50 {
            let report = {
                let mut ctx = TestCtx {
                    tb: &mut w.tb,
                    refapi: &w.refapi,
                    oar: &w.oar,
                    kavlan: &mut w.kavlan,
                    kwapi: &mut w.kwapi,
                    deployer: &w.deployer,
                    images: &w.images,
                    assigned: &assigned,
                    now: SimTime::from_hours(3),
                    rng: &mut w.rng,
                };
                run_test(&cfg, &mut ctx)
            };
            if !report.passed() {
                by_family = true;
                break;
            }
        }

        checks_only += by_checks as u32;
        full += (by_checks || by_family) as u32;
        println!(
            "{:<20} {:>16} {:>22}",
            kind.to_string(),
            if by_checks { "detected" } else { "silent" },
            if by_family {
                format!("detected ({family})")
            } else {
                "missed".to_string()
            }
        );
    }
    println!("{}", "-".repeat(60));
    println!(
        "coverage: g5k-checks alone {}/{}  |  full framework {}/{}",
        checks_only,
        FaultKind::ALL.len(),
        full,
        FaultKind::ALL.len()
    );
    println!("\nthe gap is the paper's thesis: behavioural bugs need behavioural tests.");
}

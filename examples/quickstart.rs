//! Quickstart: build the paper-scale testbed, verify a node with
//! g5k-checks, drift it, and watch the check catch the drift.
//!
//! Run with: `cargo run --release --example quickstart`

use throughout::nodecheck::check_node;
use throughout::refapi::describe;
use throughout::sim::SimTime;
use throughout::testbed::{FaultKind, FaultTarget, TestbedBuilder};

fn main() {
    // 1. The testbed of the paper, slide 6.
    let mut tb = TestbedBuilder::paper_scale().build();
    println!(
        "testbed: {} sites, {} clusters, {} nodes, {} cores",
        tb.sites().len(),
        tb.clusters().len(),
        tb.nodes().len(),
        tb.total_cores()
    );

    // 2. Publish the Reference API description (slide 7).
    let desc = describe(&tb, 1, SimTime::ZERO);
    println!(
        "reference API v{} describes {} nodes",
        desc.version,
        desc.node_count()
    );

    // 3. A pristine node passes g5k-checks.
    let node = tb.cluster_by_name("grisou").unwrap().nodes[0];
    let report = check_node(&tb, &desc, node);
    println!(
        "g5k-checks on {}: {}",
        report.node,
        if report.passed() { "OK" } else { "MISMATCH" }
    );
    assert!(report.passed());

    // 4. A maintenance mistake disables deep C-states on that node —
    //    the paper's canonical subtle bug (slide 13).
    tb.apply_fault(FaultKind::CpuCStatesDrift, FaultTarget::Node(node), SimTime::ZERO)
        .expect("fault applies");

    // 5. g5k-checks now reports exactly what drifted.
    let report = check_node(&tb, &desc, node);
    assert!(!report.passed());
    for m in &report.mismatches {
        println!("  drift on {}: {}", report.node, m);
    }
}

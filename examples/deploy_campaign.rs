//! Experiment E2 (slide 8): "200 nodes deployed in ~5 minutes".
//!
//! Sweeps deployment size and prints the makespan series, separating the
//! clean path (no per-node failures) from the default failure/retry model.
//!
//! Run with: `cargo run --release --example deploy_campaign`

use throughout::kadeploy::{standard_images, DeployConfig, Deployer};
use throughout::sim::rng::stream_rng;
use throughout::testbed::{NodeId, TestbedBuilder};

fn main() {
    let tb = TestbedBuilder::paper_scale().build();
    let env = standard_images()
        .into_iter()
        .find(|e| e.name == "debian9-base")
        .unwrap();

    // Take nodes from the two big nancy clusters, as a real 200-node
    // deployment there would.
    let mut pool: Vec<NodeId> = tb.cluster_by_name("graphene").unwrap().nodes.clone();
    pool.extend(tb.cluster_by_name("griffon").unwrap().nodes.iter().copied());

    let clean = Deployer::new(DeployConfig {
        step_fail_prob: 0.0,
        ..Default::default()
    });
    let default = Deployer::default();

    println!("image: {} ({} MB)", env.name, env.size_mb);
    println!("{:>6} {:>14} {:>18} {:>10}", "nodes", "clean (min)", "with retries (min)", "success");
    for &n in &[25usize, 50, 100, 150, 200, 232] {
        let nodes = &pool[..n.min(pool.len())];
        let mut tb1 = tb.clone();
        let mut rng = stream_rng(1, "deploy-sweep-clean");
        let r_clean = clean.deploy(&mut tb1, &env, nodes, &mut rng);
        let mut tb2 = tb.clone();
        let mut rng = stream_rng(1, "deploy-sweep-default");
        let r_def = default.deploy(&mut tb2, &env, nodes, &mut rng);
        println!(
            "{:>6} {:>14.1} {:>18.1} {:>9.1}%",
            nodes.len(),
            r_clean.makespan.as_mins_f64(),
            r_def.makespan.as_mins_f64(),
            r_def.success_ratio() * 100.0
        );
    }
    println!("\npaper reference point: 200 nodes ≈ 5 minutes");
}

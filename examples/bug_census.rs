//! Bug census: signatures by class over a 120-day paper campaign —
//! the reproduction of slide 22's bug list ("disk drives configuration,
//! CPU settings, different disk firmware versions, cabling issues,
//! various weak spots…"), with filed/fixed counts per class.
//!
//! Run with: `cargo run --release --example bug_census`
use std::collections::BTreeMap;
use throughout::core::scenario::paper_scenario;
use throughout::core::Campaign;
use throughout::sim::SimTime;

fn main() {
    let mut c = Campaign::new(paper_scenario(2017));
    c.run_until(SimTime::from_days(120));
    let mut by_prefix: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for bug in c.tracker().bugs() {
        let prefix = bug.signature.split('@').next().unwrap_or("?").to_string();
        let e = by_prefix.entry(prefix).or_default();
        e.0 += 1;
        if bug.state == throughout::bugs::BugState::Fixed {
            e.1 += 1;
        }
    }
    println!("{:<24} {:>6} {:>6}", "prefix", "filed", "fixed");
    for (p, (filed, fixed)) in &by_prefix {
        println!("{p:<24} {filed:>6} {fixed:>6}");
    }
    println!("\nactive faults at day 120: {}", c.testbed().active_faults().len());
    println!("filed {} fixed {}", c.tracker().filed(), c.tracker().fixed());
    // Top recurring signatures (possible fix-refile loops).
    let mut sig_count: BTreeMap<&str, usize> = BTreeMap::new();
    for bug in c.tracker().bugs() {
        *sig_count.entry(bug.signature.as_str()).or_default() += 1;
    }
    let mut v: Vec<_> = sig_count.into_iter().filter(|(_, n)| *n > 1).collect();
    v.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\nsignatures filed more than once:");
    for (sig, n) in v.into_iter().take(15) {
        println!("  {n}x {sig}");
    }
}

//! Experiment E5 (slides 16–17): the external scheduler vs. the naive
//! baseline, plus the per-node-scheduling ablation (slide 23's open
//! question).
//!
//! The naive baseline is what the paper warns against: Jenkins-native cron
//! triggers with blocking waits — every build submits its testbed job and
//! holds a CI executor until the job starts, competing with user requests.
//! The external scheduler instead polls availability, retries with
//! exponential backoff, avoids peak hours and caps per-site concurrency,
//! and cancels (marking unstable) testbed jobs that cannot start at once.
//!
//! Run with: `cargo run --release --example scheduler_policies [seed]`

use throughout::core::scenario::scheduling_scenario;
use throughout::core::{Campaign, SchedulingMode};
use throughout::sim::SimDuration;

struct Row {
    label: &'static str,
    tests_run: u64,
    success: f64,
    exec_busy: f64,
    user_wait_h: f64,
    latency_h: f64,
    unstable: u64,
}

fn run(label: &'static str, seed: u64, mode: SchedulingMode, per_node: bool) -> Row {
    let mut cfg = scheduling_scenario(seed, mode);
    cfg.per_node_hardware = per_node;
    let mut c = Campaign::new(cfg);
    c.run();
    let m = c.metrics();
    Row {
        label,
        tests_run: m.tests_run,
        success: m.success_ratio() * 100.0,
        exec_busy: m.executor_busy.mean() * 100.0,
        user_wait_h: m.user_wait_hours.mean(),
        latency_h: m.test_latency_hours.mean(),
        unstable: m.unstable_builds,
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2017);
    println!("30-day scheduling comparison on the paper-scale testbed (seed {seed})\n");

    let rows = vec![
        run(
            "external scheduler",
            seed,
            SchedulingMode::External,
            false,
        ),
        run(
            "naive cron + blocking wait",
            seed,
            SchedulingMode::NaiveCron {
                period: SimDuration::from_days(1),
            },
            false,
        ),
        run(
            "external + per-node hardware tests",
            seed,
            SchedulingMode::External,
            true,
        ),
    ];

    println!(
        "{:<36} {:>9} {:>9} {:>10} {:>11} {:>11} {:>9}",
        "mode", "tests", "success", "exec busy", "user wait", "latency", "unstable"
    );
    for r in rows {
        println!(
            "{:<36} {:>9} {:>8.1}% {:>9.1}% {:>9.2} h {:>9.2} h {:>9}",
            r.label, r.tests_run, r.success, r.exec_busy, r.user_wait_h, r.latency_h, r.unstable
        );
    }

    println!("\nexpected shape (paper, slide 16):");
    println!("  the naive baseline burns executors on waiting and competes with users;");
    println!("  the external scheduler completes more tests with lower executor");
    println!("  occupancy; per-node hardware tests trade coverage depth for cadence.");
}

//! Monte-Carlo sweep of the longitudinal scenario across seeds, run in
//! parallel with Rayon (campaigns are fully independent by construction —
//! every stochastic stream derives from the campaign seed).
//!
//! Quantifies the run-to-run variability behind EXPERIMENTS.md's E8/E9
//! claims: bugs filed/fixed and the final success rate.
//!
//! Run with: `cargo run --release --example seed_sweep [n_seeds] [days]`

use rayon::prelude::*;
use throughout::core::scenario::paper_scenario;
use throughout::core::Campaign;
use throughout::sim::{OnlineStats, SimDuration};

struct Outcome {
    seed: u64,
    filed: usize,
    fixed: usize,
    final_month_pct: f64,
    first_month_pct: f64,
}

fn main() {
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let days: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(180);

    println!("sweeping {n_seeds} seeds × {days} days in parallel on {} threads...", rayon::current_num_threads());
    let outcomes: Vec<Outcome> = (0..n_seeds)
        .into_par_iter()
        .map(|i| {
            let seed = 2017 + i;
            let mut cfg = paper_scenario(seed);
            cfg.duration = SimDuration::from_days(days);
            let mut c = Campaign::new(cfg);
            c.run();
            let months = c.metrics().monthly_success_percent();
            let full: Vec<&(usize, f64)> = months
                .iter()
                .filter(|(m, _)| c.metrics().monthly_success.periods()[*m].count() >= 100)
                .collect();
            Outcome {
                seed,
                filed: c.tracker().filed(),
                fixed: c.tracker().fixed(),
                first_month_pct: full.first().map(|(_, p)| *p).unwrap_or(0.0),
                final_month_pct: full.last().map(|(_, p)| *p).unwrap_or(0.0),
            }
        })
        .collect();

    println!("\n{:>6} {:>7} {:>7} {:>12} {:>12}", "seed", "filed", "fixed", "month-1", "final month");
    let mut filed = OnlineStats::new();
    let mut fixed = OnlineStats::new();
    let mut final_pct = OnlineStats::new();
    for o in &outcomes {
        println!(
            "{:>6} {:>7} {:>7} {:>11.1}% {:>11.1}%",
            o.seed, o.filed, o.fixed, o.first_month_pct, o.final_month_pct
        );
        filed.push(o.filed as f64);
        fixed.push(o.fixed as f64);
        final_pct.push(o.final_month_pct);
    }
    println!(
        "\nfiled: {:.0} ± {:.0}   fixed: {:.0} ± {:.0}   final success: {:.1}% ± {:.1}",
        filed.mean(),
        filed.stddev(),
        fixed.mean(),
        fixed.stddev(),
        final_pct.mean(),
        final_pct.stddev()
    );
    println!("paper reference: 118 filed, 84 fixed, 93% success");
}

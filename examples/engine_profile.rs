//! Ad-hoc profiling driver for the paper-scale one-day workload (the
//! `campaign/paper_scale/one_day` bench body, runnable under a profiler).
//!
//! Pass a repeat count, e.g. `cargo run --release --example engine_profile 20`.

use std::time::Instant;
use throughout::core::scenario::scheduling_scenario;
use throughout::core::{Campaign, Engine, SchedulingMode};
use throughout::sim::SimDuration;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let engine = match std::env::args().nth(2).as_deref() {
        Some("lockstep") => Engine::Lockstep,
        _ => Engine::NextEvent,
    };
    let mut total = 0u64;
    // detlint: allow(no-wall-clock) -- operator-facing timing, not simulation state
    let start = Instant::now();
    for _ in 0..reps {
        let mut cfg = scheduling_scenario(42, SchedulingMode::External);
        cfg.duration = SimDuration::from_days(1);
        cfg.engine = engine;
        // detlint: allow(no-wall-clock) -- operator-facing timing, not simulation state
        let build = Instant::now();
        let mut campaign = Campaign::new(cfg);
        let built = build.elapsed();
        // detlint: allow(no-wall-clock) -- operator-facing timing, not simulation state
        let run = Instant::now();
        campaign.run();
        println!(
            "build {:>8.2?}  run {:>8.2?}  tests_run {} stats {:?}",
            built,
            run.elapsed(),
            campaign.metrics().tests_run,
            campaign.scheduler().stats
        );
        total += campaign.metrics().tests_run;
    }
    println!(
        "{reps} reps in {:.2?} ({engine:?}), tests_run total {total}",
        start.elapsed()
    );
}

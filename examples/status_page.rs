//! Experiment E6 (slides 18–19): the status page.
//!
//! Runs a short campaign on the paper-scale testbed and renders the
//! external status page from the CI server's REST views: per-test ×
//! per-target weather grid, per-site rollups, and the success-rate series.
//!
//! Run with: `cargo run --release --example status_page [seed]`

use throughout::core::scenario::scheduling_scenario;
use throughout::core::{Campaign, SchedulingMode};
use throughout::sim::{SimDuration, SimTime};
use throughout::status::{success_series, ServicesPanel, StatusGrid};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2017);
    let mut cfg = scheduling_scenario(seed, SchedulingMode::External);
    cfg.duration = SimDuration::from_days(10);
    let mut campaign = Campaign::new(cfg);
    // The status page is a read-plane consumer: it renders from the last
    // published snapshot epoch, never from the live campaign state.
    let hub = campaign.arm_snapshots();
    println!("running 10 days of testing (seed {seed})...\n");
    campaign.run_until(SimTime::from_days(10));

    let snap = hub.latest().expect("campaign published snapshots");
    let grid = StatusGrid::from_snapshot(&snap);
    println!("== weather grid (tests × targets), slide 19 ==\n");
    println!("{}", grid.render());

    println!("== per-test status, all targets (slide 18 requirement 1) ==");
    for job in &grid.jobs {
        println!("  {:<15} {:>5.1}%", job, grid.job_ratio(job) * 100.0);
    }

    println!("\n== per-target status, all tests (slide 18 requirement 2) ==");
    let mut targets: Vec<(&String, f64)> = grid
        .targets
        .iter()
        .map(|t| (t, grid.target_ratio(t)))
        .collect();
    targets.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (target, ratio) in targets.iter().take(12) {
        println!("  {:<15} {:>5.1}%", target, ratio * 100.0);
    }

    println!("\n== historical perspective (slide 18 requirement 3) ==");
    let series = success_series(&snap.jobs, SimDuration::from_days(1));
    for (day, mean) in series.means() {
        println!("  day {:>2}: {:>5.1}%", day + 1, mean * 100.0);
    }

    println!("\n== service processes (daemon liveness + chaos ledger) ==");
    println!("{}", ServicesPanel::from_snapshot(&snap).render());
}
